#include "core/general_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/saturation.hpp"
#include "obs/trace.hpp"
#include "queueing/channel_solver.hpp"
#include "util/hash.hpp"
#include "util/math.hpp"

namespace wormnet::core {

namespace {

using queueing::ChannelSolver;

/// Lane multiplicity as the queueing layer sees it: on a slow or
/// credit-limited link (drain_floor > 0) extra lanes neither add capacity
/// nor shorten the head-of-line wait — equal-length worms time-sharing a
/// bandwidth-limited link finish no sooner on average than in FIFO order —
/// so waits, blocking and occupancy treat the channel as single-lane and
/// the sharing stretch lives in lane_share_factor instead.  Unit links
/// keep their true lane count (floor 0 — including the whole default
/// path, bit for bit).
int model_lanes(const ChannelSolver& solver, const ChannelClass& cls) {
  return solver.drain_floor(cls.bandwidth, cls.buffer_depth) > 0.0 ? 1
                                                                   : cls.lanes;
}

/// W̄ of the bundle serving class `j` at the solve's injection scale, at the
/// class's arrival SCV (the bursty-arrivals extension; ca2 == 1 reproduces
/// the paper's Poisson wait bit for bit).
double bundle_wait(const ChannelSolver& solver, const ChannelClass& cls,
                   double xbar, double injection_scale) {
  return solver.bundle_wait(cls.servers, model_lanes(solver, cls),
                            cls.rate_per_link * injection_scale, xbar, cls.ca2);
}

/// Eq. 9/10 factor for a transition from class `from` into class `to`,
/// discounted by the target's lane multiplicity (an L-lane channel blocks
/// only when all L lanes are held) and by the target's finite buffer credit
/// B/(B+b) (heterogeneous extension; exactly 1 at B = ∞).  Rates at unit
/// injection scale: the λ_in/λ_out ratio is scale-invariant.
double blocking_factor(const ChannelSolver& solver, const ChannelClass& from,
                       const ChannelClass& to, const Transition& t) {
  // True lane count here, not model_lanes: an L-lane slow link still lets
  // an arriving worm slip past a blocked one (head-of-line relief is about
  // lane availability, not link capacity), so the /L discount stands even
  // where the wait and occupancy treat the link as single-lane.
  return solver.blocking_factor(to.servers, to.lanes, from.rate_per_link,
                                to.rate_per_link, t.route_prob, to.bandwidth,
                                to.buffer_depth);
}

/// One evaluation of Eq. 11 for class `i` given current service times, plus
/// the heterogeneous-link terms of channel i itself: the lane-multiplexing
/// stretch and pipeline latency add to the composed time, while the
/// slow/credit-limited drain enters as a FLOOR — a rigid worm pipelines
/// through consecutive slow links at the bottleneck rate, so the drain
/// stretch of a path is the max over its channels, never the sum (see
/// ChannelSolver::drain_floor).  All terms vanish in the paper's uniform
/// single-lane network — the exact recurrence.
double compose_service_time(const ChannelSolver& solver, const ChannelGraph& graph,
                            int i, const std::vector<double>& x,
                            const std::vector<double>& waits,
                            double injection_scale) {
  const ChannelClass& cls = graph.at(i);
  double excess = solver.hop_excess(cls.link_latency);
  double xi;
  if (cls.terminal) {
    xi = solver.terminal_service();
  } else {
    xi = 0.0;
    for (const Transition& t : cls.next) {
      const ChannelClass& target = graph.at(t.target);
      const double p = blocking_factor(solver, cls, target, t);
      const double wait_term =
          ChannelSolver::wait_term(p, waits[static_cast<std::size_t>(t.target)]);
      xi += t.weight * (x[static_cast<std::size_t>(t.target)] + wait_term);
    }
  }
  const double floor = solver.drain_floor(cls.bandwidth, cls.buffer_depth);
  if (floor > 0.0) {
    // Non-default link: lane sharing stretches the bottleneck drain itself,
    // and the stretched floor max-composes like the plain one.  The u ≥ 1
    // guard inside the factor (+inf) is what saturates a tapered tier.
    const double shared =
        floor * solver.lane_share_factor(
                    cls.lanes, cls.rate_per_link * injection_scale,
                    cls.bandwidth, cls.buffer_depth);
    if (shared > xi) xi = shared;  // channel i itself is the path bottleneck
  } else {
    excess += solver.lane_excess(cls.lanes, cls.rate_per_link * injection_scale);
  }
  return xi + excess;
}

}  // namespace

SolveResult solve_general_model(const ChannelGraph& graph, const SolveOptions& opts) {
  WORMNET_SPAN("solve_general_model", "solve");
  WORMNET_EXPECTS(opts.worm_flits > 0.0);
  WORMNET_EXPECTS(opts.injection_scale >= 0.0);
  WORMNET_EXPECTS(graph.validate().empty());

  const ChannelSolver solver(opts.worm_flits, opts.ablation());
  const double scale = opts.injection_scale;

  const int n = graph.size();
  SolveResult result;
  result.channels.assign(static_cast<std::size_t>(n), {});
  std::vector<double> x(static_cast<std::size_t>(n), opts.worm_flits);
  std::vector<double> waits(static_cast<std::size_t>(n), 0.0);

  const std::vector<int> order = graph.reverse_topological_order();
  if (!order.empty()) {
    // Acyclic: one exact backward sweep, terminals first (the paper's §2.1
    // "service times are resolved in the reverse order of the channels
    // traversed").
    for (int id : order) {
      // Successors are already final; compose this class's x̄ from them,
      // then evaluate the wait of this class's bundle at that final x̄.
      x[static_cast<std::size_t>(id)] =
          compose_service_time(solver, graph, id, x, waits, scale);
      waits[static_cast<std::size_t>(id)] =
          bundle_wait(solver, graph.at(id), x[static_cast<std::size_t>(id)], scale);
    }
    result.iterations = 1;
    result.converged = true;
  } else {
    // Cyclic dependency graph: damped fixed-point iteration.
    result.converged = false;
    double last_delta = 0.0;
    for (int it = 0; it < opts.max_iterations; ++it) {
      double max_delta = 0.0;
      for (int id = 0; id < n; ++id) {
        waits[static_cast<std::size_t>(id)] =
            bundle_wait(solver, graph.at(id), x[static_cast<std::size_t>(id)], scale);
      }
      for (int id = 0; id < n; ++id) {
        const double next = compose_service_time(solver, graph, id, x, waits, scale);
        const double cur = x[static_cast<std::size_t>(id)];
        double blended = cur + opts.damping * (next - cur);
        if (std::isinf(next)) blended = next;  // saturation dominates damping
        max_delta = std::max(max_delta, std::abs(blended - cur));
        x[static_cast<std::size_t>(id)] = blended;
      }
      result.iterations = it + 1;
      last_delta = max_delta;
      if (max_delta < opts.tolerance || std::isinf(max_delta) || std::isnan(max_delta)) {
        result.converged = max_delta < opts.tolerance;
        break;
      }
    }
    result.telemetry.max_residual = last_delta;
    for (int id = 0; id < n; ++id) {
      waits[static_cast<std::size_t>(id)] =
          bundle_wait(solver, graph.at(id), x[static_cast<std::size_t>(id)], scale);
    }
  }

  for (int id = 0; id < n; ++id) {
    ChannelSolution& sol = result.channels[static_cast<std::size_t>(id)];
    sol.service_time = x[static_cast<std::size_t>(id)];
    sol.wait = waits[static_cast<std::size_t>(id)];
    sol.utilization = solver.bundle_utilization(
        graph.at(id).servers, model_lanes(solver, graph.at(id)),
        graph.at(id).rate_per_link * scale, sol.service_time);
    sol.cb2 = solver.cb2(sol.service_time);
    // Report the SCV the wait was actually evaluated at: with the
    // bursty_arrivals ablation off the kernel used the Poisson value, not
    // the graph's tuned one.
    sol.ca2 = opts.ablation().bursty_arrivals ? graph.at(id).ca2 : 1.0;
    // Blocking decomposition (diagnostic): the transition-weighted Eq. 9/10
    // factor — rates are scale-invariant, so this needs no re-solve.
    const ChannelClass& cls = graph.at(id);
    if (!cls.terminal) {
      double pblock = 0.0;
      for (const Transition& t : cls.next)
        pblock += t.weight * blocking_factor(solver, cls, graph.at(t.target), t);
      sol.blocking = pblock;
    }
    if (std::isfinite(sol.utilization) &&
        (result.telemetry.max_utilization_class < 0 ||
         sol.utilization > result.telemetry.max_utilization)) {
      result.telemetry.max_utilization = sol.utilization;
      result.telemetry.max_utilization_class = id;
    }
    if (!std::isfinite(sol.service_time) || !std::isfinite(sol.wait) ||
        sol.utilization >= 1.0) {
      result.stable = false;
    }
  }
  if (!result.stable) {
    // Root-cause the saturation.  The originating class is the one whose own
    // bundle is at/over capacity while its composed service time is still
    // finite — upstream classes merely inherit its infinite wait (their
    // service times diverge, their utilizations follow).  Prefer the most
    // loaded such class; when none exists the waits diverged without a
    // finite root (a slow-link drain floor or composition blow-up).
    SolveTelemetry& tel = result.telemetry;
    double worst = 0.0;
    for (int id = 0; id < n; ++id) {
      const ChannelSolution& sol = result.channels[static_cast<std::size_t>(id)];
      if (std::isfinite(sol.service_time) && std::isfinite(sol.utilization) &&
          sol.utilization >= 1.0 && sol.utilization >= worst) {
        worst = sol.utilization;
        tel.first_saturated_class = id;
        tel.saturation_cause = "occupancy";
      }
    }
    if (tel.first_saturated_class < 0) {
      for (int id = 0; id < n; ++id) {
        const ChannelSolution& sol =
            result.channels[static_cast<std::size_t>(id)];
        if (!std::isfinite(sol.service_time) || !std::isfinite(sol.wait)) {
          tel.first_saturated_class = id;
          const ChannelClass& cls = graph.at(id);
          tel.saturation_cause =
              solver.drain_floor(cls.bandwidth, cls.buffer_depth) > 0.0
                  ? "drain-capacity"
                  : "divergent-wait";
          break;
        }
      }
    }
  }
  return result;
}

LatencyEstimate estimate_latency(const SolveResult& solution,
                                 const std::vector<int>& injection_classes,
                                 double mean_distance) {
  return estimate_latency(solution, injection_classes, {}, mean_distance);
}

LatencyEstimate estimate_latency(const SolveResult& solution,
                                 const std::vector<int>& injection_classes,
                                 const std::vector<double>& weights,
                                 double mean_distance) {
  WORMNET_EXPECTS(!injection_classes.empty());
  WORMNET_EXPECTS(weights.empty() || weights.size() == injection_classes.size());
  LatencyEstimate est;
  est.mean_distance = mean_distance;
  est.stable = solution.stable;
  double wait_sum = 0.0;
  double service_sum = 0.0;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < injection_classes.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    const int id = injection_classes[i];
    wait_sum += w * solution.wait(id);
    service_sum += w * solution.service_time(id);
    weight_sum += w;
  }
  WORMNET_EXPECTS(weight_sum > 0.0);
  est.inj_wait = wait_sum / weight_sum;
  est.inj_service = service_sum / weight_sum;
  est.latency = est.inj_wait + est.inj_service + mean_distance - 1.0;
  if (!std::isfinite(est.latency)) est.stable = false;
  // Structured status: a fixed point that failed to converge dominates
  // saturation; Disconnected is layered on by callers that know their
  // model's unroutable fraction (estimate_latency itself cannot).
  if (!solution.converged)
    est.status = SolveStatus::Infeasible;
  else if (!est.stable)
    est.status = SolveStatus::Saturated;
  // NaN never escapes the solver surface: divergence reads as +infinity.
  const double inf = std::numeric_limits<double>::infinity();
  if (std::isnan(est.inj_wait)) est.inj_wait = inf;
  if (std::isnan(est.inj_service)) est.inj_service = inf;
  if (std::isnan(est.latency)) est.latency = inf;
  return est;
}

int GeneralModel::class_id(const std::string& label) const {
  auto it = labels.find(label);
  WORMNET_EXPECTS(it != labels.end());
  return it->second;
}

void GeneralModel::set_injection_ca2(double ca2) {
  WORMNET_EXPECTS(ca2 >= 0.0);
  injection_ca2 = ca2;
  // An SCV-only tune describes a batchless process: a residual left over
  // from an earlier set_injection_process(batch) must not keep inflating
  // evaluate() after the caller retunes to (say) plain Poisson.
  injection_batch_residual = 0.0;
  for (int id = 0; id < graph.size(); ++id) {
    ChannelClass& c = graph.mutable_at(id);
    // The QNA affine form: a channel retaining fraction self_frac of its
    // sources' original processes interpolates between full
    // Poissonification (1) and the injection SCV itself.
    c.ca2 = 1.0 + (ca2 - 1.0) * c.self_frac;
  }
}

void GeneralModel::set_uniform_lanes(int lanes) {
  WORMNET_EXPECTS(lanes >= 1);
  for (int id = 0; id < graph.size(); ++id) graph.mutable_at(id).lanes = lanes;
}

void GeneralModel::scale_injection_rates(double factor) {
  WORMNET_EXPECTS(factor > 0.0 && std::isfinite(factor));
  for (int id = 0; id < graph.size(); ++id) {
    graph.mutable_at(id).rate_per_link *= factor;
  }
}

void GeneralModel::set_uniform_buffers(int flits) {
  if (flits < 1)
    throw std::invalid_argument("model: buffer depth must be >= 1 flit");
  for (int id = 0; id < graph.size(); ++id)
    graph.mutable_at(id).buffer_depth = flits;
}

void GeneralModel::set_uniform_bandwidth(double bw) {
  if (!(bw > 0.0) || !std::isfinite(bw))
    throw std::invalid_argument("model: bandwidth must be > 0 flits/cycle");
  for (int id = 0; id < graph.size(); ++id)
    graph.mutable_at(id).bandwidth = bw;
}

void GeneralModel::set_channel_bandwidths(const std::vector<double>& bw) {
  if (static_cast<int>(bw.size()) != graph.size())
    throw std::invalid_argument(
        "model: bandwidth vector size must equal the channel-class count");
  for (double b : bw) {
    if (!(b > 0.0) || !std::isfinite(b))
      throw std::invalid_argument("model: bandwidth must be > 0 flits/cycle");
  }
  for (int id = 0; id < graph.size(); ++id)
    graph.mutable_at(id).bandwidth = bw[static_cast<std::size_t>(id)];
}

void GeneralModel::set_injection_process(const arrivals::ArrivalSpec& spec,
                                         double lambda0) {
  WORMNET_EXPECTS(spec.check().empty());
  // Bernoulli is the one catalog entry whose SCV depends on λ₀ (1 − λ₀);
  // tuning it at the rate-invariant default would silently collapse to the
  // Poisson ca2(0) fallback — demand the operating rate instead.
  WORMNET_EXPECTS(spec.kind() != arrivals::Kind::Bernoulli || lambda0 > 0.0);
  // The model consumes the effective (asymptotic) variability parameter,
  // which folds MMPP autocorrelation in; for renewal processes it is the
  // plain interval SCV.
  set_injection_ca2(spec.effective_ca2(lambda0));
  injection_batch_residual = spec.batch_residual();
}

namespace {

/// Fold the load-independent intra-batch serialization wait into a finished
/// estimate (the exact M^[X]/G/1 decomposition; see
/// GeneralModel::injection_batch_residual).  Off when the bursty_arrivals
/// ablation is off — the term belongs to the same extension.
LatencyEstimate apply_batch_residual(LatencyEstimate est, double residual,
                                     bool bursty_arrivals) {
  if (residual <= 0.0 || !bursty_arrivals || !std::isfinite(est.inj_service))
    return est;
  const double extra = residual * est.inj_service;
  est.inj_wait += extra;
  est.latency += extra;
  return est;
}

/// Layer the model's unroutable fraction onto a finished estimate:
/// Disconnected only when nothing worse already applies (the carried demand
/// still solved), per the SolveStatus precedence.
LatencyEstimate apply_unroutable(LatencyEstimate est, double unroutable) {
  est.unroutable_fraction = unroutable;
  if (unroutable > 0.0 && est.status == SolveStatus::Ok)
    est.status = SolveStatus::Disconnected;
  return est;
}

}  // namespace

std::uint64_t GeneralModel::content_digest() const {
  // Base digest covers name, worm length, ablation switches and the arrival
  // tuning; fold in everything else evaluate() reads.  Labels and
  // channel_class_of are reporting metadata only, and opts.injection_scale
  // is overridden by every evaluation's λ₀ — all three are deliberately
  // excluded.
  std::uint64_t h = NetworkModel::content_digest();
  h = util::hash_mix(h, static_cast<std::uint64_t>(graph.size()));
  for (int id = 0; id < graph.size(); ++id) {
    const ChannelClass& c = graph.at(id);
    h = util::hash_mix(h, (static_cast<std::uint64_t>(c.servers) << 32) |
                              (static_cast<std::uint64_t>(c.lanes) << 1) |
                              static_cast<std::uint64_t>(c.terminal));
    h = util::hash_mix_double(h, c.rate_per_link);
    h = util::hash_mix_double(h, c.ca2);
    h = util::hash_mix_double(h, c.self_frac);
    h = util::hash_mix_double(h, c.bandwidth);
    h = util::hash_mix_double(h, c.link_latency);
    h = util::hash_mix(h, static_cast<std::uint64_t>(c.buffer_depth));
    for (const Transition& t : c.next) {
      h = util::hash_mix(h, static_cast<std::uint64_t>(t.target));
      h = util::hash_mix_double(h, t.weight);
      h = util::hash_mix_double(h, t.route_prob);
    }
  }
  for (int id : injection_classes) {
    h = util::hash_mix(h, static_cast<std::uint64_t>(id));
  }
  for (double w : injection_class_weights) h = util::hash_mix_double(h, w);
  h = util::hash_mix_double(h, mean_distance);
  h = util::hash_mix_double(h, unroutable_fraction);
  h = util::hash_mix(h, static_cast<std::uint64_t>(opts.max_iterations));
  h = util::hash_mix_double(h, opts.tolerance);
  h = util::hash_mix_double(h, opts.damping);
  return h;
}

SolveResult GeneralModel::solve(double lambda0) const {
  SolveOptions run = opts;
  run.injection_scale = lambda0;
  return solve_general_model(graph, run);
}

LatencyEstimate GeneralModel::evaluate(double lambda0) const {
  return apply_unroutable(
      apply_batch_residual(
          estimate_latency(solve(lambda0), injection_classes,
                           injection_class_weights, mean_distance),
          injection_batch_residual, opts.bursty_arrivals),
      unroutable_fraction);
}

SolveResult model_solve(const GeneralModel& net, double lambda0, SolveOptions base) {
  base.injection_scale = lambda0;
  return solve_general_model(net.graph, base);
}

LatencyEstimate model_latency(const GeneralModel& net, double lambda0,
                              SolveOptions base) {
  const SolveResult res = model_solve(net, lambda0, base);
  return apply_unroutable(
      apply_batch_residual(
          estimate_latency(res, net.injection_classes,
                           net.injection_class_weights, net.mean_distance),
          net.injection_batch_residual, base.bursty_arrivals),
      net.unroutable_fraction);
}

double model_saturation_rate(const GeneralModel& net, SolveOptions base) {
  return find_saturation_rate(
      [&](double lambda0) {
        return model_latency(net, lambda0, base).inj_service;
      },
      1.0 / base.worm_flits);
}

}  // namespace wormnet::core

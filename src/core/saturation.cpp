#include "core/saturation.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace wormnet::core {

double find_saturation_rate(const std::function<double(double)>& service_of,
                            double upper_bound, int iterations) {
  WORMNET_EXPECTS(upper_bound > 0.0);
  WORMNET_EXPECTS(iterations > 0);
  // g(λ) = λ · x̄(λ) - 1 is negative below saturation, positive (or +inf)
  // at/above it.
  auto g = [&](double lambda) {
    const double x = service_of(lambda);
    if (!std::isfinite(x)) return 1.0;  // unstable: definitely past saturation
    return lambda * x - 1.0;
  };
  double lo = 0.0;
  double hi = upper_bound;
  // Ensure the bracket: grow hi if g(hi) is somehow still negative (cannot
  // happen for wormhole x̄ >= s_f with hi = 1/s_f, but keep the solver
  // generic for custom service functions).
  for (int grow = 0; grow < 64 && g(hi) < 0.0; ++grow) hi *= 2.0;
  for (int it = 0; it < iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (g(mid) < 0.0)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace wormnet::core

#include "core/fattree_graph.hpp"

#include <string>

#include "util/math.hpp"

namespace wormnet::core {

using util::ipow;

GeneralModel build_fattree_collapsed(int levels, int parents,
                                     bool exact_conditionals, int lanes) {
  WORMNET_EXPECTS(levels >= 1 && levels <= 10);
  WORMNET_EXPECTS(parents >= 1 && parents <= 4);
  WORMNET_EXPECTS(lanes >= 1);
  const int n = levels;
  const double num_procs = static_cast<double>(ipow(4, n));

  auto up_prob = [&](int l) {
    return (num_procs - static_cast<double>(ipow(4, l))) / (num_procs - 1.0);
  };
  auto rate_up = [&](int l) {  // Eq. 14 at λ₀ = 1, generalized to m parents
    double fan = 1.0;
    for (int i = 0; i < l; ++i) fan *= 4.0 / parents;
    return up_prob(l) * fan;
  };

  GeneralModel net;
  std::vector<int> up(static_cast<std::size_t>(n));
  std::vector<int> down(static_cast<std::size_t>(n));

  for (int l = 0; l < n; ++l) {
    ChannelClass c;
    c.label = "up" + std::to_string(l);
    c.servers = (l == 0) ? 1 : parents;  // injection channel has no redundant twin
    c.lanes = lanes;
    c.rate_per_link = rate_up(l);
    up[static_cast<std::size_t>(l)] = net.graph.add_channel(c);
    net.labels[c.label] = up[static_cast<std::size_t>(l)];
  }
  for (int l = 0; l < n; ++l) {
    ChannelClass c;
    c.label = "down" + std::to_string(l);
    c.servers = 1;
    c.lanes = lanes;
    c.rate_per_link = rate_up(l);  // Eq. 15: down rate mirrors up rate
    c.terminal = (l == 0);         // ejection channel ⟨1,0⟩: x̄ = s_f
    down[static_cast<std::size_t>(l)] = net.graph.add_channel(c);
    net.labels[c.label] = down[static_cast<std::size_t>(l)];
  }

  // Up-channel continuations.  A message on ⟨l, l+1⟩ reaches a switch at
  // level l+1 and either climbs into the two-server bundle ⟨l+1, l+2⟩
  // (weight and R both P↑_{l+1}) or descends into one of the THREE sibling
  // down links ⟨l+1, l⟩ (class weight P↓_{l+1}, but a specific link only
  // with R = P↓_{l+1}/3 — the weight/route_prob split that makes the
  // general solver reproduce Eq. 20/22).
  //
  // The paper uses the UNCONDITIONAL P↑_{l+1} here; the exact continuation
  // probability, given the message already climbed past level l, is
  // P↑_{l+1} / P↑_l (destinations below level l are ruled out).
  for (int l = 0; l < n - 1; ++l) {
    double pu = up_prob(l + 1);
    if (exact_conditionals) pu = up_prob(l + 1) / up_prob(l);
    const double pd = 1.0 - pu;
    net.graph.add_transition(up[static_cast<std::size_t>(l)],
                             up[static_cast<std::size_t>(l + 1)], pu, pu);
    net.graph.add_transition(up[static_cast<std::size_t>(l)],
                             down[static_cast<std::size_t>(l)], pd, pd / 3.0);
  }
  // Top level: always descend, into one of 3 siblings (Eq. 20).
  net.graph.add_transition(up[static_cast<std::size_t>(n - 1)],
                           down[static_cast<std::size_t>(n - 1)], 1.0, 1.0 / 3.0);

  // Down-channel continuations: ⟨l+1, l⟩ feeds exactly one of the 4 child
  // links ⟨l, l-1⟩ (weight 1, R = 1/4 — Eq. 18).
  for (int l = 1; l < n; ++l) {
    net.graph.add_transition(down[static_cast<std::size_t>(l)],
                             down[static_cast<std::size_t>(l - 1)], 1.0, 0.25);
  }

  net.injection_classes = {up[0]};
  net.model_name = "collapsed-fattree(n=" + std::to_string(levels) +
                   ",m=" + std::to_string(parents) + ")";
  const double denom = num_procs - 1.0;
  double dbar = 0.0;
  for (int l = 1; l <= n; ++l)
    dbar += 2.0 * l * 3.0 * static_cast<double>(ipow(4, l - 1)) / denom;
  net.mean_distance = dbar;

  WORMNET_ENSURES(net.graph.validate().empty());
  WORMNET_ENSURES(net.graph.acyclic());
  return net;
}

}  // namespace wormnet::core

// wormnet/core/network_model.hpp
//
// A packaged instance of the general model for one concrete network: the
// channel graph (with unit-injection rates), the injection channel classes,
// and the mean path length.  Builders in fattree_graph.hpp,
// hypercube_graph.hpp and full_graph.hpp produce these; the helpers below
// evaluate latency and saturation without the caller touching the solver
// plumbing.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/channel_graph.hpp"
#include "core/general_model.hpp"

namespace wormnet::core {

/// A channel graph plus the metadata needed to turn a solve into a latency.
struct NetworkModel {
  ChannelGraph graph;
  /// Class ids of the processors' injection channels (one per symmetry
  /// group; estimate_latency averages them uniformly).
  std::vector<int> injection_classes;
  /// D̄ of the paper's Eq. 2, counted in channels.
  double mean_distance = 0.0;
  /// Builder-provided label → class id map (used by tests and reports).
  std::map<std::string, int> labels;

  /// Look up a labeled class id; aborts if absent.
  int class_id(const std::string& label) const;
};

/// Solve the model at injection rate λ₀ (messages/cycle/PE) and report
/// network latency.  `base` supplies worm length and ablation switches; its
/// injection_scale is overridden by `lambda0`.
LatencyEstimate model_latency(const NetworkModel& net, double lambda0,
                              SolveOptions base);

/// Full solve at λ₀ (per-channel detail), same option handling.
SolveResult model_solve(const NetworkModel& net, double lambda0, SolveOptions base);

/// Saturation injection rate λ₀* (Eq. 26) for the network under `base`.
double model_saturation_rate(const NetworkModel& net, SolveOptions base);

}  // namespace wormnet::core

// wormnet/core/network_model.hpp
//
// The polymorphic surface of the analytical model: every instantiation —
// the closed-form butterfly fat-tree (§3), the general channel-graph solver
// (§2) over collapsed fat-tree / hypercube / per-channel mesh graphs, and
// any user-built model — implements this one interface, so the sweep engine
// and experiment harness drive all of them uniformly.
//
// Implementations own their topology description and ablation switches; the
// interface deals only in the paper's observable quantities: the latency
// estimate at an injection rate (Eq. 2/25) and the saturation rate (Eq. 26).
#pragma once

#include <cstdint>
#include <string>

#include "queueing/channel_solver.hpp"

namespace wormnet::core {

/// Structured outcome of an evaluation, so callers never have to parse NaN
/// or Inf out of the numbers.  Precedence when several apply:
/// Infeasible > Saturated > Disconnected > Ok.
enum class SolveStatus {
  Ok,            ///< converged, stable, all demand routable
  Saturated,     ///< some bundle at or past saturation (ρ ≥ 1); waits diverge
  Infeasible,    ///< solver failed to converge / produced non-finite values
  Disconnected,  ///< some offered demand had no surviving path (faults)
};

/// Short stable name for a SolveStatus ("ok", "saturated", ...).
const char* to_string(SolveStatus status);

/// Network-level latency summary (Eq. 2/25):
///     L = mean_j [ W̄_inj(j) + x̄_inj(j) ] + D̄ - 1.
///
/// Contract: latency and inj_wait are never NaN — a diverged or failed
/// solve reports +infinity — and non-finite values appear only with status
/// Saturated or Infeasible.  `stable` remains the quick boolean view
/// (true iff status is Ok or Disconnected: the carried demand is served).
struct LatencyEstimate {
  bool stable = true;
  SolveStatus status = SolveStatus::Ok;
  double latency = 0.0;       ///< L, cycles from generation to tail delivery
  double inj_wait = 0.0;      ///< mean source-queue wait
  double inj_service = 0.0;   ///< mean injection-channel service time
  double mean_distance = 0.0; ///< D̄ in channels
  /// Fraction of offered pair-weight with no surviving path (0 when the
  /// fabric is healthy); the latency above describes the carried demand.
  double unroutable_fraction = 0.0;
};

/// An analytical wormhole-network model evaluated at an injection rate.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  /// Human-readable model identity for reports and logs.
  virtual std::string name() const = 0;

  /// s_f, the worm length in flits this model was configured with.
  virtual double worm_flits() const = 0;

  /// The ablation switches in force (the paper's two novelties + erratum).
  virtual queueing::AblationOptions ablation() const = 0;

  /// The injection-process SCV (C_a²) this model is currently tuned to; 1 —
  /// the paper's Poisson assumption — unless the implementation supports the
  /// bursty-arrivals extension (GeneralModel via set_injection_ca2).  Part
  /// of the interface so sweep caches can key on it.
  virtual double arrival_ca2() const { return 1.0; }

  /// The injection process's intra-batch serialization residual (mean
  /// batch-mates ahead, in injection services; see
  /// arrivals::ArrivalSpec::batch_residual); 0 for batchless processes.
  /// Interface-visible for the same cache-keying reason as arrival_ca2.
  virtual double arrival_batch_residual() const { return 0.0; }

  /// Content digest: a hash over every configuration axis that can change
  /// evaluate()'s result, such that two models with equal digests produce
  /// bitwise-identical estimates at every λ₀.  Memo caches
  /// (harness::SweepEngine, harness::QueryEngine) key evaluations on this
  /// value instead of the model's address, so entries survive the model
  /// object itself — a rebuilt or cloned model with identical content hits
  /// the cache, and a recycled address can never serve stale data.
  ///
  /// The default folds the identity the base interface can see: name(),
  /// worm length, ablation switches and the arrival-process tuning.  That
  /// is sufficient ONLY when name() pins down everything else (true for
  /// FatTreeModel, whose name encodes levels/parents/lanes; GeneralModel
  /// overrides to hash its channel graph).
  /// Implementations whose evaluate() depends on state beyond these axes
  /// MUST override and mix that state in, or caches may serve a lookalike's
  /// estimate.  Called once per cached evaluation (batch sweeps hoist it),
  /// so overrides should stay O(model size) or better.
  virtual std::uint64_t content_digest() const;

  /// Evaluate at λ₀ messages/cycle/processor.
  virtual LatencyEstimate evaluate(double lambda0) const = 0;

  /// Evaluate at a load expressed in flits/cycle/processor (Fig. 3's x-axis).
  LatencyEstimate evaluate_load(double load_flits) const;

  /// Saturation injection rate λ₀* solving Eq. 26 (λ₀ · x̄_inj(λ₀) = 1) by
  /// bisection.  The default implementation brackets from 1/s_f (the
  /// injection channel can never serve faster than one worm per s_f cycles);
  /// implementations may override with a cheaper closed form.
  virtual double saturation_rate() const;

  /// Saturation throughput in flits/cycle/processor (λ₀* · s_f).
  double saturation_load() const;
};

}  // namespace wormnet::core

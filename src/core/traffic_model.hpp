// wormnet/core/traffic_model.hpp
//
// The traffic-aware instantiation of the paper's §2 general model: route
// every (src, dst) pair weight of a traffic::TrafficSpec through a
// topo::Topology and accumulate exact per-physical-channel rates and
// continuation probabilities into a ChannelGraph.  This replaces the
// uniform-only hand-derived rate formulas as the way load enters the model —
// any topology x any destination distribution becomes solvable.
//
// Algorithm: one flow-propagation pass per DESTINATION.  For a fixed dst the
// routing function node -> candidate ports (with topo.route_split()
// probabilities — the fat-tree's randomized up-phase becomes an equal split)
// defines an acyclic "route DAG": candidates strictly decrease the distance
// to dst, so flows from all sources superpose on it and merge at nodes.
// Processing nodes in topological order costs O(channels) per destination —
// O(N² · hops) overall — where enumerating individual paths would blow up
// exponentially in the fat-tree's redundant up-phase (2^(l-1) minimal paths
// per pair at LCA level l).
//
// The resulting GeneralModel matches the uniform builders under
// TrafficSpec::uniform() (tested to machine precision) and plugs into the
// sweep engine like any other NetworkModel.
//
// QNA-style SCV propagation (the bursty-arrivals extension)
// ---------------------------------------------------------
// Alongside rates, the same DP propagates each channel's structural
// burstiness retention `self_frac`: sub-streams split from a source's
// injection process with cumulative fraction p carry SCV p·C_inj² + (1 − p)
// (the Markovian split rule, composable across splits), and merges weight
// sub-stream SCVs by rate (the QNA asymptotic-merge rule).  Both operations
// are affine in C_inj², so only the structural coefficient
//     self_frac(ch) = Σ_substreams flow·frac / rate(ch)   ∈ [0, 1]
// is stored — GeneralModel::set_injection_ca2 then retunes every channel to
//     C_a²(ch) = 1 + (C_inj² − 1) · self_frac(ch)
// in O(channels) without re-routing.  Injection channels are pinned to
// self_frac = 1 (they carry the source's undivided process); deep channels
// merging many thin sub-streams approach 0, the superposition
// Poissonification limit.  The solver consumes C_a²(ch) through the
// Allen–Cunneen G/G/m wait in queueing::ChannelSolver.
#pragma once

#include "core/general_model.hpp"
#include "topo/topology.hpp"
#include "traffic/traffic_spec.hpp"

namespace wormnet::core {

/// Concurrency knobs for build_traffic_model.
///
/// Determinism contract: the per-destination passes are partitioned into a
/// FIXED set of shards (a function of the topology's processor count only,
/// never of the worker count), every shard accumulates into private
/// buffers, and the reduction runs in shard order — so the built model is
/// BITWISE-identical for every thread count, including threads = 1
/// (tested in test_traffic_model.cpp / test_perf_guards.cpp).
struct TrafficBuildOptions {
  /// Worker threads for the destination shards: 0 = a shared pool sized to
  /// the hardware (the default), 1 = run serially on the calling thread,
  /// n = a private pool of n workers (tests use this to pin a width).
  unsigned threads = 0;
};

/// Build the per-physical-channel general model of `topo` loaded with `spec`.
///
/// Channel class ids coincide with topo::ChannelTable ids.  Rates are per
/// unit injection rate: a processor with injection_weight w injects w · λ₀.
/// Processors with zero injection weight (silent rows of a custom matrix)
/// are excluded from the latency average; `mean_distance` is the
/// traffic-weighted D̄.  `opts` seeds the model's worm length, ablation
/// switches and solver knobs; `build` controls the builder's own
/// parallelism (the result does not depend on it — see TrafficBuildOptions).
/// Preconditions: topo.num_processors() >= 2, spec.check(P) passes, and at
/// least one pair weight is positive.
GeneralModel build_traffic_model(const topo::Topology& topo,
                                 const traffic::TrafficSpec& spec,
                                 const SolveOptions& opts = {},
                                 const TrafficBuildOptions& build = {});

}  // namespace wormnet::core

// wormnet/core/traffic_model.hpp
//
// The traffic-aware instantiation of the paper's §2 general model: route
// every (src, dst) pair weight of a traffic::TrafficSpec through a
// topo::Topology and accumulate exact per-physical-channel rates and
// continuation probabilities into a ChannelGraph.  This replaces the
// uniform-only hand-derived rate formulas as the way load enters the model —
// any topology x any destination distribution becomes solvable.
//
// Algorithm: one flow-propagation pass per DESTINATION.  For a fixed dst the
// routing function node -> candidate ports (with topo.route_split()
// probabilities — the fat-tree's randomized up-phase becomes an equal split)
// defines an acyclic "route DAG": candidates strictly decrease the distance
// to dst, so flows from all sources superpose on it and merge at nodes.
// Processing nodes in topological order costs O(channels) per destination —
// O(N² · hops) overall — where enumerating individual paths would blow up
// exponentially in the fat-tree's redundant up-phase (2^(l-1) minimal paths
// per pair at LCA level l).
//
// The resulting GeneralModel matches the uniform builders under
// TrafficSpec::uniform() (tested to machine precision) and plugs into the
// sweep engine like any other NetworkModel.
//
// QNA-style SCV propagation (the bursty-arrivals extension)
// ---------------------------------------------------------
// Alongside rates, the same DP propagates each channel's structural
// burstiness retention `self_frac`: sub-streams split from a source's
// injection process with cumulative fraction p carry SCV p·C_inj² + (1 − p)
// (the Markovian split rule, composable across splits), and merges weight
// sub-stream SCVs by rate (the QNA asymptotic-merge rule).  Both operations
// are affine in C_inj², so only the structural coefficient
//     self_frac(ch) = Σ_substreams flow·frac / rate(ch)   ∈ [0, 1]
// is stored — GeneralModel::set_injection_ca2 then retunes every channel to
//     C_a²(ch) = 1 + (C_inj² − 1) · self_frac(ch)
// in O(channels) without re-routing.  Injection channels are pinned to
// self_frac = 1 (they carry the source's undivided process); deep channels
// merging many thin sub-streams approach 0, the superposition
// Poissonification limit.  The solver consumes C_a²(ch) through the
// Allen–Cunneen G/G/m wait in queueing::ChannelSolver.
// Symmetry-collapsed building (the 100k–1M-endpoint scaling path)
// ---------------------------------------------------------------
// The dense builder above is exact but O(N) per-channel state and O(N²·hops)
// work.  When the topology declares a routing-preserving symmetry
// (topo::topology_symmetry) and the traffic spec is invariant under it
// (TrafficSpec::symmetric), the whole computation collapses the way the
// paper's §3 fat-tree closed form does: run ONE flow-propagation pass per
// destination ORBIT (scaled by the orbit size) and accumulate per channel
// CLASS, producing a GeneralModel with O(classes) ChannelClass entries that
// solve_general_model consumes unchanged.  A levels-10 fat-tree (1,048,576
// processors, ~4.2M channels) folds to 20 classes and builds in well under a
// second; the dense path would need terabytes of pass work.
//
// Exactness: with classes that are true orbits, every dense channel of a
// class carries the same rate/self_frac/ca2 and the quotient recurrence is
// the dense recurrence folded — the two models agree to machine precision
// (tested across topology × pattern × lanes × arrival process).  User-
// declared partitions are taken on trust; check_collapsed_parity() rebuilds
// densely at small N and reports the first class whose members disagree.
#pragma once

#include <memory>

#include "core/general_model.hpp"
#include "topo/fault.hpp"
#include "topo/symmetry.hpp"
#include "topo/topology.hpp"
#include "traffic/traffic_spec.hpp"

namespace wormnet::core {

/// How build_traffic_model turns (topology, spec) into channel classes.
enum class CollapseMode {
  /// One class per physical channel — the exact reference path (default;
  /// class ids coincide with topo::ChannelTable ids).
  Dense,
  /// Best available: symmetric quotient when topology and spec both declare
  /// the symmetry (and the quotient is genuinely smaller), else sparse
  /// seeding for fixed-destination patterns, else Dense.  Never changes the
  /// model semantics — only its size or build cost.
  Auto,
  /// Demand the symmetric quotient; precondition failure when the topology
  /// or spec declares none (supply user_classes for irregular topologies).
  Symmetric,
  /// Dense classes but per-destination source-list seeding — bitwise
  /// identical to Dense, skips the O(N) source scan per destination for
  /// permutation-style patterns.
  Sparse,
};

/// Concurrency and collapse knobs for build_traffic_model.
///
/// Determinism contract: the per-destination passes are partitioned into a
/// FIXED set of shards (a function of the topology's processor count only,
/// never of the worker count), every shard accumulates into private
/// buffers, and the reduction runs in shard order — so the built model is
/// BITWISE-identical for every thread count, including threads = 1
/// (tested in test_traffic_model.cpp / test_perf_guards.cpp).
struct TrafficBuildOptions {
  /// Worker threads for the destination shards: 0 = a shared pool sized to
  /// the hardware (the default), 1 = run serially on the calling thread,
  /// n = a private pool of n workers (tests use this to pin a width).
  /// At or below kSerialCutoffProcs processors, 0 runs serially: the
  /// fork/join overhead exceeds the whole build there (BENCH_perf.json,
  /// BM_TrafficModelBuildFatTree/3), and the shard contract makes the
  /// fallback bitwise-invisible.
  unsigned threads = 0;
  /// Channel-class strategy; Dense preserves the historical behavior.
  CollapseMode collapse = CollapseMode::Dense;
  /// Hand-declared partition for irregular topologies (used by Auto /
  /// Symmetric when set, bypassing the topology's own hooks).  Must outlive
  /// the call; sizes must match (num_processors, ChannelTable channels).
  /// Taken on trust — validate with check_collapsed_parity at small N.
  const topo::SymmetryClasses* user_classes = nullptr;
  /// Auto falls back to the dense/sparse path when the declared quotient
  /// has more classes than this (the O(classes²) transition accumulator
  /// stops being "flat memory" long before it stops being correct).
  int max_symmetry_classes = 2048;
  /// Processor count at or below which threads = 0 builds serially.
  static constexpr int kSerialCutoffProcs = 128;
};

/// Build the per-physical-channel general model of `topo` loaded with `spec`.
///
/// Channel class ids coincide with topo::ChannelTable ids.  Rates are per
/// unit injection rate: a processor with injection_weight w injects w · λ₀.
/// Processors with zero injection weight (silent rows of a custom matrix)
/// are excluded from the latency average; `mean_distance` is the
/// traffic-weighted D̄.  `opts` seeds the model's worm length, ablation
/// switches and solver knobs; `build` controls the builder's own
/// parallelism (the result does not depend on it — see TrafficBuildOptions).
/// Preconditions: topo.num_processors() >= 2, spec.check(P) passes, and at
/// least one pair weight is positive.
GeneralModel build_traffic_model(const topo::Topology& topo,
                                 const traffic::TrafficSpec& spec,
                                 const SolveOptions& opts = {},
                                 const TrafficBuildOptions& build = {});

/// Convenience: build_traffic_model with CollapseMode::Auto — the entry
/// point for large fabrics.  Collapsed models carry channel_class_of /
/// injection_class_weights and report as "traffic-sym(...)"; when no usable
/// symmetry exists the result is the ordinary dense model.
GeneralModel build_traffic_model_collapsed(const topo::Topology& topo,
                                           const traffic::TrafficSpec& spec,
                                           const SolveOptions& opts = {},
                                           TrafficBuildOptions build = {});

/// Validate a collapsed model against the dense reference: rebuild densely
/// and compare every physical channel's rate and self_frac against its
/// class's values (1e-9 relative / 1e-12 absolute).  Returns the empty
/// string on agreement, else a message naming the first disagreeing class —
/// the check that rejects asymmetric user-declared partitions.  Dense
/// rebuild cost: only call at small N.
/// Precondition: `collapsed` has channel_class_of (was built collapsed).
std::string check_collapsed_parity(const topo::Topology& topo,
                                   const traffic::TrafficSpec& spec,
                                   const GeneralModel& collapsed,
                                   const SolveOptions& opts = {});

/// Outcome of one RetunableTrafficModel::retune_traffic call — the
/// observability record harness::QueryEngine surfaces as per-query cost
/// classes.
struct RetuneReport {
  /// The full dense propagation re-ran (delta touched most of the matrix,
  /// or the resident switched from collapsed to dense with no flow state to
  /// delta against).
  bool rebuilt = false;
  /// Served by the PR 6 symmetric-quotient path: one pass per destination
  /// ORBIT — O(classes) state — instead of per destination.
  bool collapsed = false;
  /// Destination (or destination-orbit) passes actually run.
  int passes = 0;
  /// (src, dst) pairs whose weight or injection split changed between the
  /// old and new spec (dense path only; 0 on the collapsed path).
  long changed_pairs = 0;
};

/// A resident traffic-aware model retunable IN PLACE along the what-if axes
/// — the paper's "answers in microseconds" value proposition kept warm for
/// a query service instead of re-derived per question.
///
/// The key property is that the flow-propagation DP is LINEAR in its
/// (src, dst) pair-weight seeds: when a new TrafficSpec changes only some
/// pairs (a hotspot moves, a permutation is re-wired, a matrix row is
/// edited), retune_traffic re-propagates only SIGNED DELTA seeds
/// (Δflow = w' − w, Δself = w'²/i' − w²/i) for the destinations whose
/// column changed — O(affected destinations) passes, not N — then re-runs
/// the O(channels) assembly.  When the new spec still respects the
/// topology's symmetry (and the build options allow collapsing), the
/// retune composes with the PR 6 quotient path instead: one pass per
/// destination orbit against O(classes) state.  Whole-matrix changes
/// (uniform → hotspot, a fraction change touching every row) fall back to
/// a cold rebuild, reported via RetuneReport::rebuilt.
///
/// Correctness contract: after any retune sequence, model() agrees with a
/// cold build_traffic_model of the current spec to ≤ 1e-12 on every
/// channel rate / self_frac / ca2 (the delta path re-associates floating
/// sums; residues where the true value is 0 are snapped) and ≤ 1e-9 on
/// latency / saturation (tested in tests/test_query_engine.cpp).
///
/// Lane, load, arrival-process, buffer-depth and bandwidth tunes
/// (set_uniform_lanes, scale_injection_rates, set_injection_process,
/// set_uniform_buffers, scale_bandwidths) are recorded and re-applied
/// after every retune or rebuild, so the axes compose: a resident tuned
/// to 4 lanes, 4-flit buffers and MMPP arrivals stays so tuned when the
/// hotspot moves.
///
/// Value semantics: copyable (the QueryEngine clones one resident per
/// what-if variant and retunes the copies in parallel).  The Topology must
/// outlive every copy.
class RetunableTrafficModel {
 public:
  RetunableTrafficModel(const topo::Topology& topo, traffic::TrafficSpec spec,
                        const SolveOptions& opts = {},
                        const TrafficBuildOptions& build = {});
  ~RetunableTrafficModel();
  RetunableTrafficModel(const RetunableTrafficModel& other);
  RetunableTrafficModel& operator=(const RetunableTrafficModel& other);
  RetunableTrafficModel(RetunableTrafficModel&&) noexcept;
  RetunableTrafficModel& operator=(RetunableTrafficModel&&) noexcept;

  /// The current model (retuned in place by the methods below).
  const GeneralModel& model() const;
  GeneralModel& model();
  /// The TrafficSpec the model currently reflects.
  const traffic::TrafficSpec& spec() const;
  /// True when the resident is a symmetry-collapsed quotient model.
  bool collapsed() const;

  /// Move the model to `new_spec` via the cheapest applicable path (see the
  /// class comment); returns what was done.
  RetuneReport retune_traffic(const traffic::TrafficSpec& new_spec);

  /// Fault delta: move the resident to the degraded routing state described
  /// by `faults` (null or empty = healthy).  The decorated topology keeps
  /// the base's channel structure, so a dense resident is served IN PLACE:
  /// for each destination column whose routing differs between the outgoing
  /// and incoming fault views, the old column is re-propagated with negated
  /// seeds under the OLD routing and re-added under the NEW — O(affected
  /// columns) passes, never a rebuild (RetuneReport::changed_pairs counts
  /// affected columns here).  Collapsed residents rebuild dense on entering
  /// a degraded state (faults void the symmetry) and may re-collapse on
  /// returning to healthy.  Demand toward destinations unreachable under
  /// the faults is dropped at the source and surfaces as
  /// GeneralModel::unroutable_fraction.  The fault set must have been built
  /// against this resident's topology; it is retained (shared) until the
  /// next retune_faults call.
  RetuneReport retune_faults(std::shared_ptr<const topo::FaultSet> faults);

  /// The active fault set (nullptr = healthy).
  const topo::FaultSet* faults() const;
  /// The topology routing currently runs against: the fault view when one
  /// is active, else the base topology passed at construction.
  const topo::Topology& routing_topology() const;

  /// Lane delta: O(channels), recorded and re-applied across retunes.
  void set_uniform_lanes(int lanes);
  /// Buffer-depth delta: O(channels), recorded and re-applied
  /// (util::kInfiniteBufferDepth restores the paper's unbounded buffering).
  /// Throws std::invalid_argument on flits < 1.
  void set_uniform_buffers(int flits);
  /// Bandwidth delta: multiply every channel class's bandwidth by `factor`
  /// (> 0, composes; recorded and re-applied on top of whatever per-channel
  /// bandwidths the topology declares — a tapered fat-tree keeps its taper
  /// shape under a global scale).  Throws std::invalid_argument on
  /// factor <= 0.
  void scale_bandwidths(double factor);
  /// Load delta: multiply all channel rates (composes; recorded).
  /// Equivalent to evaluating the unscaled model at λ₀·factor — see
  /// GeneralModel::scale_injection_rates for the 1-ulp caveat.
  void scale_injection_rates(double factor);
  /// Arrival-process delta: O(channels), recorded and re-applied.
  void set_injection_process(const arrivals::ArrivalSpec& process,
                             double lambda0 = 0.0);
  /// Raw-SCV variant of the above (batchless processes).
  void set_injection_ca2(double ca2);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wormnet::core

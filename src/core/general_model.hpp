// wormnet/core/general_model.hpp
//
// The paper's general wormhole-routing performance model (§2), solved over a
// ChannelGraph.
//
// For each channel class i the solver computes (Eq. 11):
//
//     x̄_i = Σ_j  weight(i→j) · [ x̄_j + P(i|j) · W̄_j ]
//
// where W̄_j is the M/G/m mean wait of the output bundle serving class j and
// P(i|j) is the wormhole blocking-probability correction of Eq. 9/10 — both
// evaluated by the shared queueing::ChannelSolver kernel, the single home of
// that recurrence.  Terminal (ejection) classes have x̄ = s_f, the worm
// length in flits.
//
// The service times resolve in reverse-topological order — "from the last
// channel backwards to the injecting channel" — in a single exact sweep when
// the dependency graph is acyclic (true for the fat-tree, e-cube hypercube
// and DOR mesh).  For cyclic graphs the solver falls back to damped
// fixed-point iteration.
//
// The ablation switches (queueing::AblationOptions) reproduce the paper's
// two claimed novelties and the published erratum, so benches can quantify
// each ingredient's contribution.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "core/channel_graph.hpp"
#include "core/network_model.hpp"

namespace wormnet::core {

/// Knobs for one solve.
struct SolveOptions {
  double worm_flits = 16.0;        ///< s_f, worm length in flits
  double injection_scale = 1.0;    ///< λ₀ multiplier applied to all unit rates
  bool multi_server = true;        ///< paper novelty (1)
  bool blocking_correction = true; ///< paper novelty (2)
  bool erratum_2lambda = true;     ///< corrected Eq. 21/23 (total bundle rate)
  bool virtual_channels = true;    ///< honor per-channel lane counts (extension)
  bool bursty_arrivals = true;     ///< honor per-channel C_a² (extension)
  /// Honor per-channel bandwidth / link latency / buffer depth (extension);
  /// inert — bit-for-bit — on the default uniform attributes.
  bool finite_buffers = true;
  int max_iterations = 500;        ///< fixed-point cap for cyclic graphs
  double tolerance = 1e-12;        ///< fixed-point convergence threshold
  double damping = 0.5;            ///< fixed-point damping factor in (0, 1]

  /// The switches the ChannelSolver kernel consumes.
  queueing::AblationOptions ablation() const {
    return {multi_server, blocking_correction, erratum_2lambda, virtual_channels,
            bursty_arrivals, finite_buffers};
  }
};

/// Per-class solution values.
struct ChannelSolution {
  double service_time = 0.0;  ///< x̄_i (cycles)
  double wait = 0.0;          ///< W̄ of the bundle serving this class (cycles)
  double utilization = 0.0;   ///< ρ of that bundle
  double cb2 = 0.0;           ///< squared service CV used for the wait
  double ca2 = 1.0;           ///< squared arrival CV the wait was evaluated at
  /// Transition-weighted mean Eq. 9/10 blocking factor over this class's
  /// outgoing transitions (0 for terminals): how much of the downstream
  /// wait a worm leaving this class actually eats.  Diagnostic only —
  /// nothing downstream consumes it.
  double blocking = 0.0;
};

/// Why (and where) a solve landed where it did — the per-solve diagnostics
/// the observability layer publishes.  Purely additive: every pre-existing
/// SolveResult field is computed exactly as before.
struct SolveTelemetry {
  /// Final fixed-point max |Δx̄| (0 on acyclic graphs — the sweep is exact).
  double max_residual = 0.0;
  /// Largest finite bundle utilization and the class it occurred at (-1
  /// when every utilization is non-finite).
  double max_utilization = 0.0;
  int max_utilization_class = -1;
  /// For unstable solves: the class where saturation originates — the
  /// finite-service class whose own bundle is at/over capacity (upstream
  /// classes merely inherit its infinite wait).  -1 when stable.
  int first_saturated_class = -1;
  /// "occupancy" (a bundle hit ρ >= 1), "drain-capacity" (a slow or
  /// credit-limited link's shared drain floor diverged), "divergent-wait"
  /// (no finite root — waits diverged in composition), or "" when stable.
  const char* saturation_cause = "";
};

/// Outcome of a solve.
struct SolveResult {
  bool stable = true;   ///< every bundle below saturation (all waits finite)
  bool converged = true;///< fixed-point converged (always true on DAGs)
  int iterations = 0;   ///< sweeps performed
  SolveTelemetry telemetry;
  std::vector<ChannelSolution> channels;

  /// x̄ of class id.
  double service_time(int id) const { return channels.at(static_cast<std::size_t>(id)).service_time; }
  /// W̄ of class id's bundle.
  double wait(int id) const { return channels.at(static_cast<std::size_t>(id)).wait; }
  /// ρ of class id's bundle.
  double utilization(int id) const { return channels.at(static_cast<std::size_t>(id)).utilization; }
};

/// Solve the general model over `graph`.
/// Preconditions: graph.validate() is empty.
SolveResult solve_general_model(const ChannelGraph& graph, const SolveOptions& opts);

/// Average Eq. 1 over the given injection classes with uniform weights.
/// `injection_classes` lists the class id of each PE's injection channel
/// (one entry per symmetric group is fine when all PEs are equivalent).
LatencyEstimate estimate_latency(const SolveResult& solution,
                                 const std::vector<int>& injection_classes,
                                 double mean_distance);

/// Weighted variant for collapsed (quotient) models where each injection
/// class stands for a whole processor orbit: `weights` (parallel to
/// `injection_classes`, need not be normalized) carry the orbit sizes, so
/// the weighted average equals the dense per-processor uniform average.
LatencyEstimate estimate_latency(const SolveResult& solution,
                                 const std::vector<int>& injection_classes,
                                 const std::vector<double>& weights,
                                 double mean_distance);

/// The general model packaged for one concrete network: the channel graph
/// (with unit-injection rates), the injection channel classes, the mean
/// path length, and the solve options.  Builders in fattree_graph.hpp,
/// hypercube_graph.hpp and full_graph.hpp produce these; as a NetworkModel
/// it plugs straight into the sweep engine and experiment harness.
class GeneralModel final : public NetworkModel {
 public:
  ChannelGraph graph;
  /// Class ids of the processors' injection channels (one per symmetry
  /// group; estimate_latency averages them uniformly).
  std::vector<int> injection_classes;
  /// Orbit sizes parallel to injection_classes for collapsed models where
  /// one entry stands for many processors; empty means uniform weights.
  std::vector<double> injection_class_weights;
  /// For symmetry-collapsed models: per topo::ChannelTable channel id, the
  /// quotient class id it was folded into.  Empty for per-channel models
  /// (where class ids == channel ids).  Parity checks and reports use this
  /// to line dense channels up against collapsed classes.
  std::vector<int> channel_class_of;
  /// D̄ of the paper's Eq. 2, counted in channels.
  double mean_distance = 0.0;
  /// Fraction of offered pair-weight with no surviving path under the
  /// builder's (possibly faulted) topology — 0 on a healthy fabric.  Carried
  /// demand excludes it (unroutable pairs seed no flow); evaluate() reports
  /// it through LatencyEstimate::unroutable_fraction and downgrades status
  /// to Disconnected when positive.
  double unroutable_fraction = 0.0;
  /// Builder-provided label → class id map (used by tests and reports).
  std::map<std::string, int> labels;
  /// Worm length, ablation switches and solver knobs.  `injection_scale`
  /// is overridden per evaluation by the λ₀ argument.
  SolveOptions opts;
  /// Builder-provided identity for reports.
  std::string model_name = "general";
  /// The injection-process SCV the per-channel ca2 values are tuned to
  /// (see set_injection_ca2); 1 is the paper's Poisson assumption.
  double injection_ca2 = 1.0;
  /// The injection process's intra-batch serialization term (mean
  /// batch-mates ahead of a random arrival, in injection services) — the
  /// load-independent half of the exact M^[X]/G/1 wait that the SCV cannot
  /// carry.  evaluate() adds injection_batch_residual · x̄_inj to the
  /// source wait; 0 for every batchless process.
  double injection_batch_residual = 0.0;

  /// Look up a labeled class id; aborts if absent.
  int class_id(const std::string& label) const;

  /// Retune every channel's arrival SCV to an injection process with the
  /// given (effective) C_a² using the structural self_frac each class
  /// carries:
  ///     ca2(ch) = 1 + (ca2 − 1) · self_frac(ch),
  /// and reset the batch residual (an SCV-only tune describes a batchless
  /// process).  O(channels) — no re-routing — so burstiness sweeps reuse
  /// one built model.  For hand-built graphs (self_frac ≡ 0 off the
  /// builder path) this only records the value; channel SCVs stay Poisson.
  /// When tuning to a cataloged process prefer set_injection_process —
  /// hand-fed values must be arrivals::ArrivalSpec::effective_ca2(), NOT
  /// the interval ca2(): for the correlated MMPP-2 the interval SCV
  /// understates queueing (a measured 31% model optimism, EXPERIMENTS.md).
  void set_injection_ca2(double ca2);

  /// Tune the model to an arrival process end-to-end: per-channel SCVs from
  /// spec.ca2(lambda0) via set_injection_ca2, plus the process's intra-batch
  /// residual.  This is the one call benches and sweeps should use.
  void set_injection_process(const arrivals::ArrivalSpec& spec,
                             double lambda0 = 0.0);

  /// Retune every channel class to `lanes` virtual channels per physical
  /// link.  Lane counts enter the solve only through ChannelClass::lanes —
  /// rates, self_frac and transitions are lane-independent — so this is
  /// O(channels) and BITWISE-identical to rebuilding the model from a
  /// topology with Topology::set_uniform_lanes(lanes) (tested).  The
  /// what-if lane axis for resident models.
  void set_uniform_lanes(int lanes);

  /// Scale every channel's per-link rate by `factor` (> 0): the what-if
  /// load axis for resident models.  Because the solver only ever consumes
  /// rate_per_link · injection_scale, a uniformly scaled model evaluated at
  /// λ₀ agrees with the unscaled model evaluated at λ₀·factor up to one
  /// ulp per product (the multiplication re-associates) — within the 1e-12
  /// delta-retune parity contract, not bitwise.  Scales compose; rescale by
  /// 1/factor to undo.
  void scale_injection_rates(double factor);

  /// Retune every channel class to a per-lane flit-buffer depth of `flits`
  /// (util::kInfiniteBufferDepth restores the paper's unbounded buffering).
  /// O(channels), like set_uniform_lanes — the what-if buffer axis for
  /// resident models.  Throws std::invalid_argument on depth < 1.
  void set_uniform_buffers(int flits);

  /// Retune every channel class to bandwidth `bw` flits/cycle (1.0 restores
  /// the paper's uniform links).  O(channels).  Throws std::invalid_argument
  /// on bw <= 0.
  void set_uniform_bandwidth(double bw);

  /// Retune per-class bandwidths: `bw[id]` becomes class id's bandwidth
  /// (size must equal graph.size(); every entry > 0, else
  /// std::invalid_argument).  The what-if bandwidth axis — a QueryEngine
  /// bandwidth_scale reads the resident per-class bandwidths, scales them,
  /// and applies here.
  void set_channel_bandwidths(const std::vector<double>& bw);

  /// Full solve at λ₀ (per-channel detail).
  SolveResult solve(double lambda0) const;

  // NetworkModel interface.
  std::string name() const override { return model_name; }
  double worm_flits() const override { return opts.worm_flits; }
  queueing::AblationOptions ablation() const override { return opts.ablation(); }
  double arrival_ca2() const override { return injection_ca2; }
  double arrival_batch_residual() const override {
    return injection_batch_residual;
  }
  /// Content digest over everything evaluate() consumes: the full channel
  /// graph (rates, lanes, SCVs, transitions), injection classes/weights,
  /// mean distance and the solver knobs.  Two GeneralModels with equal
  /// digests evaluate bitwise-identically at every λ₀, so memo caches can
  /// share entries across rebuilt or cloned models.  O(channels +
  /// transitions).
  std::uint64_t content_digest() const override;
  LatencyEstimate evaluate(double lambda0) const override;
};

/// Full solve at λ₀ (per-channel detail).  `base` supplies worm length and
/// ablation switches; its injection_scale is overridden by `lambda0`.
SolveResult model_solve(const GeneralModel& net, double lambda0, SolveOptions base);

/// Solve the model at injection rate λ₀ (messages/cycle/PE) and report
/// network latency, same option handling.
LatencyEstimate model_latency(const GeneralModel& net, double lambda0,
                              SolveOptions base);

/// Saturation injection rate λ₀* (Eq. 26) for the network under `base`.
double model_saturation_rate(const GeneralModel& net, SolveOptions base);

}  // namespace wormnet::core

// wormnet/core/general_model.hpp
//
// The paper's general wormhole-routing performance model (§2), solved over a
// ChannelGraph.
//
// For each channel class i the solver computes (Eq. 11):
//
//     x̄_i = Σ_j  weight(i→j) · [ x̄_j + P(i|j) · W̄_j ]
//
// where W̄_j is the M/G/m mean wait of the output bundle serving class j
// (Eq. 6 for m = 1, Hokstad's Eq. 8 for m = 2, the generalized kernel for
// m > 2), evaluated at the bundle's total rate, and P(i|j) is the wormhole
// blocking-probability correction of Eq. 9/10.  Terminal (ejection) classes
// have x̄ = s_f, the worm length in flits.
//
// The service times resolve in reverse-topological order — "from the last
// channel backwards to the injecting channel" — in a single exact sweep when
// the dependency graph is acyclic (true for the fat-tree, e-cube hypercube
// and DOR mesh).  For cyclic graphs the solver falls back to damped
// fixed-point iteration.
//
// Ablation switches reproduce the paper's two claimed novelties and the
// published erratum, so benches can quantify each ingredient's contribution:
//  * multi_server = false     → treat an m-link bundle as m independent
//                               M/G/1 servers, each with the per-link rate;
//  * blocking_correction = false → P(i|j) ≡ 1 (plain store-and-forward-style
//                               reuse of Poisson queueing results);
//  * erratum_2lambda = false  → evaluate M/G/2 at the per-link rate, the
//                               uncorrected formula as originally typeset.
#pragma once

#include <vector>

#include "core/channel_graph.hpp"

namespace wormnet::core {

/// Knobs for one solve.
struct SolveOptions {
  double worm_flits = 16.0;        ///< s_f, worm length in flits
  double injection_scale = 1.0;    ///< λ₀ multiplier applied to all unit rates
  bool multi_server = true;        ///< paper novelty (1)
  bool blocking_correction = true; ///< paper novelty (2)
  bool erratum_2lambda = true;     ///< corrected Eq. 21/23 (total bundle rate)
  int max_iterations = 500;        ///< fixed-point cap for cyclic graphs
  double tolerance = 1e-12;        ///< fixed-point convergence threshold
  double damping = 0.5;            ///< fixed-point damping factor in (0, 1]
};

/// Per-class solution values.
struct ChannelSolution {
  double service_time = 0.0;  ///< x̄_i (cycles)
  double wait = 0.0;          ///< W̄ of the bundle serving this class (cycles)
  double utilization = 0.0;   ///< ρ of that bundle
  double cb2 = 0.0;           ///< squared CV used for the wait
};

/// Outcome of a solve.
struct SolveResult {
  bool stable = true;   ///< every bundle below saturation (all waits finite)
  bool converged = true;///< fixed-point converged (always true on DAGs)
  int iterations = 0;   ///< sweeps performed
  std::vector<ChannelSolution> channels;

  /// x̄ of class id.
  double service_time(int id) const { return channels.at(static_cast<std::size_t>(id)).service_time; }
  /// W̄ of class id's bundle.
  double wait(int id) const { return channels.at(static_cast<std::size_t>(id)).wait; }
  /// ρ of class id's bundle.
  double utilization(int id) const { return channels.at(static_cast<std::size_t>(id)).utilization; }
};

/// Solve the general model over `graph`.
/// Preconditions: graph.validate() is empty.
SolveResult solve_general_model(const ChannelGraph& graph, const SolveOptions& opts);

/// Network-level latency summary assembled from a SolveResult (Eq. 2/25):
///     L = mean_j [ W̄_inj(j) + x̄_inj(j) ] + D̄ - 1.
struct LatencyEstimate {
  bool stable = true;
  double latency = 0.0;       ///< L, cycles from generation to tail delivery
  double inj_wait = 0.0;      ///< mean source-queue wait
  double inj_service = 0.0;   ///< mean injection-channel service time
  double mean_distance = 0.0; ///< D̄ in channels
};

/// Average Eq. 1 over the given injection classes with uniform weights.
/// `injection_classes` lists the class id of each PE's injection channel
/// (one entry per symmetric group is fine when all PEs are equivalent).
LatencyEstimate estimate_latency(const SolveResult& solution,
                                 const std::vector<int>& injection_classes,
                                 double mean_distance);

}  // namespace wormnet::core

// wormnet/core/fattree_model.hpp
//
// Closed-form instantiation of the model for the butterfly fat-tree — the
// paper's §3, Eq. 12–26, implemented exactly as published (with the
// documented erratum at Eq. 21/23).
//
// Channel naming follows the paper's ⟨i, j⟩ level pairs:
//  * "up l"   is the channel class ⟨l, l+1⟩ for l = 0 .. n-1; up 0 is the
//    processor's injection channel ⟨0, 1⟩;
//  * "down l" is the channel class ⟨l+1, l⟩ for l = 0 .. n-1; down 0 is the
//    ejection channel ⟨1, 0⟩ with deterministic service s_f (Eq. 16).
//
// Recurrences (λ from Eq. 12–15; W from the ChannelSolver kernel):
//  * down:  x̄⟨l+1,l⟩ = x̄⟨l,l-1⟩ + (1 − ¼·λ⟨l+1,l⟩/λ⟨l,l-1⟩)·W̄⟨l,l-1⟩   (Eq. 18)
//  * top:   x̄⟨n-1,n⟩ = x̄⟨n,n-1⟩ + ⅔·W̄⟨n,n-1⟩                           (Eq. 20)
//  * up:    x̄⟨l-1,l⟩ = P↑_l·[x̄⟨l,l+1⟩ + (1 − (λ⟨l-1,l⟩/λ⟨l,l+1⟩)·P↑_l)·W̄⟨l,l+1⟩]
//                     + P↓_l·[x̄⟨l,l-1⟩ + (1 − P↓_l/3)·W̄⟨l,l-1⟩]          (Eq. 22)
//  * waits: M/G/2 at rate 2λ for up bundles (erratum), M/G/1 for the
//    injection channel and all down channels                              (Eq. 17/19/21/23/24)
//  * L = W̄⟨0,1⟩ + x̄⟨0,1⟩ + D̄ − 1                                        (Eq. 25)
//  * saturation: the λ₀ at which x̄⟨0,1⟩ = 1/λ₀                           (Eq. 26)
//
// The per-channel wait/blocking arithmetic lives in the shared
// queueing::ChannelSolver kernel — this class only wires the fat-tree's
// level structure into it, and exposes the NetworkModel interface so the
// sweep engine and harness drive it like any other model.  With all
// switches at their defaults it agrees with the general solver on the
// collapsed fat-tree graph to machine precision (tested).
#pragma once

#include <vector>

#include "core/network_model.hpp"

namespace wormnet::core {

/// Configuration of the closed-form fat-tree model.
struct FatTreeModelOptions {
  int levels = 3;                  ///< n; N = 4^n processors
  double worm_flits = 16.0;        ///< s_f, worm length in flits
  bool multi_server = true;        ///< model up-link pairs as M/G/2 (paper novelty 1)
  bool blocking_correction = true; ///< apply Eq. 9/10 (paper novelty 2)
  bool erratum_2lambda = true;     ///< corrected Eq. 21/23 (2λ in the M/G/2)

  /// Parent links per switch.  2 is the paper's butterfly fat-tree; other
  /// values model the GeneralizedFatTree through the M/G/m kernel — the
  /// ">2-server" extension the paper's conclusion anticipates.  Up-link
  /// rates become λ₀·P↑_l·(4/m)^l and bundle waits use m servers at total
  /// rate m·λ.
  int parents = 2;

  /// Virtual channels (lanes) per physical link, uniform across the tree.
  /// Every blocking factor of Eq. 18/20/22 is discounted L-fold (an L-lane
  /// channel blocks only when all L lanes are held); 1 reproduces the paper.
  int lanes = 1;

  /// Honor `lanes` in the blocking recurrence (the ablation switch for the
  /// virtual-channel extension; no effect when lanes == 1).
  bool virtual_channels = true;

  /// The switches the ChannelSolver kernel consumes.
  queueing::AblationOptions ablation() const {
    return {multi_server, blocking_correction, erratum_2lambda, virtual_channels};
  }
};

/// Full per-level evaluation at one injection rate.
struct FatTreeEvaluation {
  bool stable = true;         ///< all queues below saturation
  double lambda0 = 0.0;       ///< messages/cycle per processor
  double load_flits = 0.0;    ///< λ₀ · s_f, flits/cycle per processor
  double latency = 0.0;       ///< L of Eq. 25
  double inj_wait = 0.0;      ///< W̄⟨0,1⟩
  double inj_service = 0.0;   ///< x̄⟨0,1⟩
  double mean_distance = 0.0; ///< D̄

  /// Index l holds channel ⟨l, l+1⟩ (size n).
  std::vector<double> lambda_up, x_up, w_up, rho_up;
  /// Index l holds channel ⟨l+1, l⟩ (size n).
  std::vector<double> x_down, w_down, rho_down;

  /// The network-level summary of this evaluation (Eq. 25).
  LatencyEstimate summary() const;
};

/// The paper's butterfly fat-tree model.
class FatTreeModel final : public NetworkModel {
 public:
  explicit FatTreeModel(FatTreeModelOptions opts);

  /// The configuration in force.
  const FatTreeModelOptions& options() const { return opts_; }
  /// Number of processors N = 4^n.
  long num_processors() const;
  /// D̄ over uniform distinct pairs.
  double mean_distance() const;

  /// P↑_l of Eq. 12: probability a message at a level-l switch continues up.
  double up_probability(int level) const;
  /// λ⟨l,l+1⟩ of Eq. 14 per physical link, at injection rate lambda0.
  double rate_up(int level, double lambda0) const;

  /// Full per-level evaluation at λ₀ messages/cycle/processor.
  FatTreeEvaluation evaluate_detail(double lambda0) const;
  /// Per-level evaluation at a load in flits/cycle/processor.
  FatTreeEvaluation evaluate_load_detail(double load_flits) const;

  // NetworkModel interface.
  std::string name() const override;
  double worm_flits() const override { return opts_.worm_flits; }
  queueing::AblationOptions ablation() const override { return opts_.ablation(); }
  LatencyEstimate evaluate(double lambda0) const override;

 private:
  FatTreeModelOptions opts_;
};

}  // namespace wormnet::core

#include "core/full_graph.hpp"

#include "core/traffic_model.hpp"

namespace wormnet::core {

GeneralModel build_full_channel_graph(const topo::Topology& topo) {
  GeneralModel net = build_traffic_model(topo, traffic::TrafficSpec::uniform());
  net.model_name = "full-channel(" + topo.name() + ")";
  return net;
}

}  // namespace wormnet::core

#include "core/full_graph.hpp"

#include <map>
#include <string>
#include <vector>

#include "topo/channels.hpp"

namespace wormnet::core {

namespace {

/// Per-channel accumulation state during flow propagation.
struct FlowState {
  std::vector<double> rate;                    // total flow through channel
  std::vector<std::map<int, double>> onward;   // channel -> next channel flow
};

/// Recursive probability-splitting walk of all minimal routes s -> d.
/// `prob` is the probability mass carried on this branch; `prev` is the
/// channel just traversed (kNoChannel at the source).
void walk(const topo::Topology& topo, const topo::ChannelTable& ct, int node, int dest,
          double prob, int prev, FlowState& fs) {
  if (topo.is_processor(node) && node == dest) return;  // consumed
  const topo::RouteOptions opts = topo.route(node, dest);
  WORMNET_ENSURES(opts.size() > 0);
  const double split = prob / opts.size();
  for (int i = 0; i < opts.size(); ++i) {
    const int ch = ct.from(node, opts[i]);
    WORMNET_ENSURES(ch != topo::kNoChannel);
    fs.rate[static_cast<std::size_t>(ch)] += split;
    if (prev != topo::kNoChannel) fs.onward[static_cast<std::size_t>(prev)][ch] += split;
    walk(topo, ct, topo.neighbor(node, opts[i]), dest, split, ch, fs);
  }
}

}  // namespace

GeneralModel build_full_channel_graph(const topo::Topology& topo) {
  const topo::ChannelTable ct(topo);
  const int num_channels = ct.size();
  const int procs = topo.num_processors();
  WORMNET_EXPECTS(procs >= 2);

  FlowState fs;
  fs.rate.assign(static_cast<std::size_t>(num_channels), 0.0);
  fs.onward.assign(static_cast<std::size_t>(num_channels), {});

  // Unit injection rate per processor, uniform destinations.
  const double pair_weight = 1.0 / (procs - 1);
  for (int s = 0; s < procs; ++s) {
    for (int d = 0; d < procs; ++d) {
      if (d == s) continue;
      walk(topo, ct, s, d, pair_weight, topo::kNoChannel, fs);
    }
  }

  // Output-bundle membership: bundle_of[channel] is a dense id unique per
  // (node, bundle); bundle_size[channel] is its m.
  std::vector<int> bundle_of(static_cast<std::size_t>(num_channels), -1);
  std::vector<int> bundle_size(static_cast<std::size_t>(num_channels), 1);
  int next_bundle = 0;
  for (int node = 0; node < topo.num_nodes(); ++node) {
    for (const topo::PortBundle& pb : topo.output_bundles(node)) {
      for (int i = 0; i < pb.count; ++i) {
        const int ch = ct.from(node, pb[i]);
        if (ch == topo::kNoChannel) continue;
        bundle_of[static_cast<std::size_t>(ch)] = next_bundle;
        bundle_size[static_cast<std::size_t>(ch)] = pb.count;
      }
      ++next_bundle;
    }
  }

  GeneralModel net;
  for (int ch = 0; ch < num_channels; ++ch) {
    const topo::DirectedChannel& dc = ct.at(ch);
    ChannelClass c;
    c.label = "ch" + std::to_string(dc.src_node) + ":" + std::to_string(dc.src_port);
    c.servers = bundle_size[static_cast<std::size_t>(ch)];
    c.rate_per_link = fs.rate[static_cast<std::size_t>(ch)];
    c.terminal = topo.is_processor(dc.dst_node);
    const int id = net.graph.add_channel(c);
    WORMNET_ENSURES(id == ch);  // 1:1 channel table <-> class ids
    net.labels[c.label] = id;
  }

  for (int ch = 0; ch < num_channels; ++ch) {
    const double total = fs.rate[static_cast<std::size_t>(ch)];
    if (total <= 0.0) continue;
    const auto& onward = fs.onward[static_cast<std::size_t>(ch)];
    // Aggregate per-bundle flow for R(i|j) (route_prob targets the bundle,
    // not the specific link inside it).
    std::map<int, double> bundle_flow;
    for (const auto& [next_ch, flow] : onward)
      bundle_flow[bundle_of[static_cast<std::size_t>(next_ch)]] += flow;
    for (const auto& [next_ch, flow] : onward) {
      const double weight = flow / total;
      const double route_prob =
          bundle_flow[bundle_of[static_cast<std::size_t>(next_ch)]] / total;
      net.graph.add_transition(ch, next_ch, weight, route_prob);
    }
  }

  for (int p = 0; p < procs; ++p) {
    const int inj = ct.from(p, 0);
    WORMNET_ENSURES(inj != topo::kNoChannel);
    net.injection_classes.push_back(inj);
  }
  net.mean_distance = topo.mean_distance();
  net.model_name = "full-channel(" + topo.name() + ")";

  const std::string problems = net.graph.validate();
  WORMNET_ENSURES(problems.empty());
  return net;
}

}  // namespace wormnet::core

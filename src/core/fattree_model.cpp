#include "core/fattree_model.hpp"

#include <cmath>
#include <limits>

#include "queueing/channel_solver.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace wormnet::core {

using queueing::ChannelSolver;
using util::ipow;

FatTreeModel::FatTreeModel(FatTreeModelOptions opts) : opts_(opts) {
  WORMNET_EXPECTS(opts_.levels >= 1 && opts_.levels <= 8);
  WORMNET_EXPECTS(opts_.worm_flits > 0.0);
  WORMNET_EXPECTS(opts_.parents >= 1 && opts_.parents <= 4);
  WORMNET_EXPECTS(opts_.lanes >= 1);
}

std::string FatTreeModel::name() const {
  std::string n = "butterfly-fattree(n=" + std::to_string(opts_.levels) +
                  ",m=" + std::to_string(opts_.parents);
  if (opts_.lanes > 1) n += ",L=" + std::to_string(opts_.lanes);
  return n + ")";
}

long FatTreeModel::num_processors() const { return ipow(4, opts_.levels); }

double FatTreeModel::mean_distance() const {
  const double denom = static_cast<double>(num_processors()) - 1.0;
  double sum = 0.0;
  for (int l = 1; l <= opts_.levels; ++l)
    sum += 2.0 * l * 3.0 * static_cast<double>(ipow(4, l - 1)) / denom;
  return sum;
}

double FatTreeModel::up_probability(int level) const {
  WORMNET_EXPECTS(level >= 0 && level <= opts_.levels);
  // Eq. 12: of the 4^n - 1 possible destinations, 4^l - 1 are reachable
  // without leaving the level-l subtree.
  const double n4 = static_cast<double>(num_processors());
  return (n4 - static_cast<double>(ipow(4, level))) / (n4 - 1.0);
}

double FatTreeModel::rate_up(int level, double lambda0) const {
  WORMNET_EXPECTS(level >= 0 && level < opts_.levels);
  // Eq. 14 generalized: level l offers 4^n·λ₀·P↑_l messages over
  // 4^(n-l)·m^l links, i.e. λ₀·P↑_l·(4/m)^l per link; m = 2 reproduces the
  // paper's λ₀·P↑_l·2^l.  At level 0 this degenerates to λ₀, so the
  // injection channel is handled uniformly.
  const double fan = 4.0 / static_cast<double>(opts_.parents);
  return lambda0 * up_probability(level) * std::pow(fan, level);
}

LatencyEstimate FatTreeEvaluation::summary() const {
  LatencyEstimate est;
  est.stable = stable;
  est.status = stable ? SolveStatus::Ok : SolveStatus::Saturated;
  est.latency = latency;
  est.inj_wait = inj_wait;
  est.inj_service = inj_service;
  est.mean_distance = mean_distance;
  // The closed form never produces NaN past saturation, only +inf waits —
  // but keep the interface contract airtight regardless.
  if (std::isnan(est.latency))
    est.latency = std::numeric_limits<double>::infinity();
  return est;
}

FatTreeEvaluation FatTreeModel::evaluate_detail(double lambda0) const {
  WORMNET_EXPECTS(lambda0 >= 0.0);
  const int n = opts_.levels;
  const double sf = opts_.worm_flits;
  const ChannelSolver solver(sf, opts_.ablation());

  FatTreeEvaluation ev;
  ev.lambda0 = lambda0;
  ev.load_flits = lambda0 * sf;
  ev.mean_distance = mean_distance();
  ev.lambda_up.resize(static_cast<std::size_t>(n));
  ev.x_up.assign(static_cast<std::size_t>(n), 0.0);
  ev.w_up.assign(static_cast<std::size_t>(n), 0.0);
  ev.rho_up.assign(static_cast<std::size_t>(n), 0.0);
  ev.x_down.assign(static_cast<std::size_t>(n), 0.0);
  ev.w_down.assign(static_cast<std::size_t>(n), 0.0);
  ev.rho_down.assign(static_cast<std::size_t>(n), 0.0);

  for (int l = 0; l < n; ++l)
    ev.lambda_up[static_cast<std::size_t>(l)] = rate_up(l, lambda0);
  auto lam = [&](int l) { return ev.lambda_up[static_cast<std::size_t>(l)]; };

  const int m = opts_.parents;
  const int lanes = opts_.lanes;
  // Lane-multiplexing excess of the level-l channel (zero at lanes == 1).
  auto ex = [&](int l) { return solver.lane_excess(lanes, lam(l)); };

  // --- Down chain, Eq. 16–19, resolved from the ejection channel upward.
  // Down channels are single-server; their waits come from the kernel's
  // M/G/1 path (Eq. 17/19), lane-extended to M/G/L when lanes > 1.
  ev.x_down[0] = solver.terminal_service() + ex(0);  // Eq. 16
  ev.w_down[0] = solver.bundle_wait(1, lanes, lam(0), ev.x_down[0]);  // Eq. 17
  for (int l = 1; l < n; ++l) {
    // Eq. 18: continue down one of 4 children, R = 1/4.
    const double p = solver.blocking_factor(1, lanes, lam(l), lam(l - 1), 0.25);
    ev.x_down[static_cast<std::size_t>(l)] =
        ev.x_down[static_cast<std::size_t>(l - 1)] +
        ChannelSolver::wait_term(p, ev.w_down[static_cast<std::size_t>(l - 1)]) +
        ex(l);
    ev.w_down[static_cast<std::size_t>(l)] = solver.bundle_wait(
        1, lanes, lam(l), ev.x_down[static_cast<std::size_t>(l)]);  // Eq. 19
  }

  // --- Up chain, Eq. 20–24, resolved from the top downward.  Up bundles at
  // level >= 1 are m-server channels; the kernel applies the erratum's
  // total-rate correction (Eq. 21/23) and the ablation switches.
  {
    // Eq. 20: after the top-most up channel ⟨n-1, n⟩ a message descends to
    // one of 3 siblings; λ⟨n-1,n⟩ = λ⟨n,n-1⟩ makes the factor exactly 2/3.
    const int l = n - 1;
    const double p = solver.blocking_factor(1, lanes, lam(l), lam(l), 1.0 / 3.0);
    ev.x_up[static_cast<std::size_t>(l)] =
        ev.x_down[static_cast<std::size_t>(l)] +
        ChannelSolver::wait_term(p, ev.w_down[static_cast<std::size_t>(l)]) + ex(l);
  }
  if (n >= 2) {
    const int top = n - 1;
    ev.w_up[static_cast<std::size_t>(top)] = solver.bundle_wait(
        m, lanes, lam(top), ev.x_up[static_cast<std::size_t>(top)]);  // Eq. 21
  }
  for (int l = n - 1; l >= 1; --l) {
    // Eq. 22 for channel ⟨l-1, l⟩.
    const double pu = up_probability(l);
    const double pd = 1.0 - pu;  // Eq. 13
    const double block_up = solver.blocking_factor(m, lanes, lam(l - 1), lam(l), pu);
    const double up_term =
        ev.x_up[static_cast<std::size_t>(l)] +
        ChannelSolver::wait_term(block_up, ev.w_up[static_cast<std::size_t>(l)]);
    const double block_down =
        solver.blocking_factor(1, lanes, lam(l - 1), lam(l - 1), pd / 3.0);
    const double down_term =
        ev.x_down[static_cast<std::size_t>(l - 1)] +
        ChannelSolver::wait_term(block_down, ev.w_down[static_cast<std::size_t>(l - 1)]);
    ev.x_up[static_cast<std::size_t>(l - 1)] =
        pu * up_term + pd * down_term + ex(l - 1);
    if (l - 1 >= 1) {
      ev.w_up[static_cast<std::size_t>(l - 1)] = solver.bundle_wait(
          m, lanes, lam(l - 1), ev.x_up[static_cast<std::size_t>(l - 1)]);  // Eq. 23
    }
  }
  // Eq. 24: the injection channel has no redundant twin — M/G/1 (M/G/L with
  // lane latches).
  ev.w_up[0] = solver.bundle_wait(1, lanes, lam(0), ev.x_up[0]);

  // Utilizations (diagnostics; also the stability verdict): lane occupancy
  // of the m·L latches when lanes > 1.
  for (int l = 0; l < n; ++l) {
    const int servers = (l >= 1) ? m : 1;
    ev.rho_up[static_cast<std::size_t>(l)] = solver.bundle_utilization(
        servers, lanes, lam(l), ev.x_up[static_cast<std::size_t>(l)]);
    ev.rho_down[static_cast<std::size_t>(l)] = solver.bundle_utilization(
        1, lanes, lam(l), ev.x_down[static_cast<std::size_t>(l)]);
  }

  ev.inj_wait = ev.w_up[0];
  ev.inj_service = ev.x_up[0];
  ev.latency = ev.inj_wait + ev.inj_service + ev.mean_distance - 1.0;  // Eq. 25
  ev.stable = std::isfinite(ev.latency);
  for (double rho : ev.rho_up)
    if (rho >= 1.0) ev.stable = false;
  for (double rho : ev.rho_down)
    if (rho >= 1.0) ev.stable = false;
  return ev;
}

FatTreeEvaluation FatTreeModel::evaluate_load_detail(double load_flits) const {
  return evaluate_detail(load_flits / opts_.worm_flits);
}

LatencyEstimate FatTreeModel::evaluate(double lambda0) const {
  return evaluate_detail(lambda0).summary();
}

}  // namespace wormnet::core

#include "core/fattree_model.hpp"

#include <cmath>

#include "core/saturation.hpp"
#include "queueing/queueing.hpp"
#include "util/math.hpp"

namespace wormnet::core {

using util::clamp01;
using util::ipow;

FatTreeModel::FatTreeModel(FatTreeModelOptions opts) : opts_(opts) {
  WORMNET_EXPECTS(opts_.levels >= 1 && opts_.levels <= 8);
  WORMNET_EXPECTS(opts_.worm_flits > 0.0);
  WORMNET_EXPECTS(opts_.parents >= 1 && opts_.parents <= 4);
}

long FatTreeModel::num_processors() const { return ipow(4, opts_.levels); }

double FatTreeModel::mean_distance() const {
  const double denom = static_cast<double>(num_processors()) - 1.0;
  double sum = 0.0;
  for (int l = 1; l <= opts_.levels; ++l)
    sum += 2.0 * l * 3.0 * static_cast<double>(ipow(4, l - 1)) / denom;
  return sum;
}

double FatTreeModel::up_probability(int level) const {
  WORMNET_EXPECTS(level >= 0 && level <= opts_.levels);
  // Eq. 12: of the 4^n - 1 possible destinations, 4^l - 1 are reachable
  // without leaving the level-l subtree.
  const double n4 = static_cast<double>(num_processors());
  return (n4 - static_cast<double>(ipow(4, level))) / (n4 - 1.0);
}

double FatTreeModel::rate_up(int level, double lambda0) const {
  WORMNET_EXPECTS(level >= 0 && level < opts_.levels);
  // Eq. 14 generalized: level l offers 4^n·λ₀·P↑_l messages over
  // 4^(n-l)·m^l links, i.e. λ₀·P↑_l·(4/m)^l per link; m = 2 reproduces the
  // paper's λ₀·P↑_l·2^l.  At level 0 this degenerates to λ₀, so the
  // injection channel is handled uniformly.
  const double fan = 4.0 / static_cast<double>(opts_.parents);
  return lambda0 * up_probability(level) * std::pow(fan, level);
}

FatTreeEvaluation FatTreeModel::evaluate(double lambda0) const {
  WORMNET_EXPECTS(lambda0 >= 0.0);
  const int n = opts_.levels;
  const double sf = opts_.worm_flits;

  FatTreeEvaluation ev;
  ev.lambda0 = lambda0;
  ev.load_flits = lambda0 * sf;
  ev.mean_distance = mean_distance();
  ev.lambda_up.resize(static_cast<std::size_t>(n));
  ev.x_up.assign(static_cast<std::size_t>(n), 0.0);
  ev.w_up.assign(static_cast<std::size_t>(n), 0.0);
  ev.rho_up.assign(static_cast<std::size_t>(n), 0.0);
  ev.x_down.assign(static_cast<std::size_t>(n), 0.0);
  ev.w_down.assign(static_cast<std::size_t>(n), 0.0);
  ev.rho_down.assign(static_cast<std::size_t>(n), 0.0);

  for (int l = 0; l < n; ++l)
    ev.lambda_up[static_cast<std::size_t>(l)] = rate_up(l, lambda0);
  auto lam = [&](int l) { return ev.lambda_up[static_cast<std::size_t>(l)]; };

  // Wait of the m-link up bundle at level l >= 1 under the ablation flags.
  const int m = opts_.parents;
  auto up_bundle_wait = [&](int l, double xbar) {
    if (!opts_.multi_server)
      return queueing::mg1_wait_wormhole(lam(l), xbar, sf);
    const double lambda_arg = opts_.erratum_2lambda ? m * lam(l) : lam(l);
    return queueing::wormhole_wait(m, lambda_arg, xbar, sf);
  };
  // Blocking factor 1 - (λ_in/λ_out)·R under the ablation flag (Eq. 10).
  // (With independent single-server up links the worm commits to one
  // specific link uniformly, dividing R by m — the caller passes the
  // per-link R.)
  auto blocking = [&](double lam_in, double lam_out, double r) {
    if (!opts_.blocking_correction) return 1.0;
    return lam_out > 0.0 ? clamp01(1.0 - (lam_in / lam_out) * r) : 1.0;
  };
  // p·W with the p == 0 case short-circuited: a zero blocking probability
  // means "never waits here", which must hold even when W has diverged past
  // saturation (0 * inf would otherwise poison the chain with NaN).
  auto wait_term = [](double p, double w) { return p > 0.0 ? p * w : 0.0; };

  // --- Down chain, Eq. 16–19, resolved from the ejection channel upward.
  ev.x_down[0] = sf;  // Eq. 16
  ev.w_down[0] = queueing::mg1_wait_wormhole(lam(0), ev.x_down[0], sf);  // Eq. 17
  for (int l = 1; l < n; ++l) {
    // Eq. 18: continue down one of 4 children, R = 1/4.
    const double p = blocking(lam(l), lam(l - 1), 0.25);
    ev.x_down[static_cast<std::size_t>(l)] =
        ev.x_down[static_cast<std::size_t>(l - 1)] +
        wait_term(p, ev.w_down[static_cast<std::size_t>(l - 1)]);
    ev.w_down[static_cast<std::size_t>(l)] = queueing::mg1_wait_wormhole(
        lam(l), ev.x_down[static_cast<std::size_t>(l)], sf);  // Eq. 19
  }

  // --- Up chain, Eq. 20–24, resolved from the top downward.
  {
    // Eq. 20: after the top-most up channel ⟨n-1, n⟩ a message descends to
    // one of 3 siblings; λ⟨n-1,n⟩ = λ⟨n,n-1⟩ makes the factor exactly 2/3.
    const int l = n - 1;
    const double p = blocking(lam(l), lam(l), 1.0 / 3.0);
    ev.x_up[static_cast<std::size_t>(l)] =
        ev.x_down[static_cast<std::size_t>(l)] +
        wait_term(p, ev.w_down[static_cast<std::size_t>(l)]);
  }
  if (n >= 2) {
    const int top = n - 1;
    ev.w_up[static_cast<std::size_t>(top)] =
        up_bundle_wait(top, ev.x_up[static_cast<std::size_t>(top)]);  // Eq. 21
  }
  for (int l = n - 1; l >= 1; --l) {
    // Eq. 22 for channel ⟨l-1, l⟩.
    const double pu = up_probability(l);
    const double pd = 1.0 - pu;  // Eq. 13
    const double r_up = opts_.multi_server ? pu : pu / m;
    const double block_up = blocking(lam(l - 1), lam(l), r_up);
    const double up_term =
        ev.x_up[static_cast<std::size_t>(l)] +
        wait_term(block_up, ev.w_up[static_cast<std::size_t>(l)]);
    const double block_down = blocking(lam(l - 1), lam(l - 1), pd / 3.0);
    const double down_term =
        ev.x_down[static_cast<std::size_t>(l - 1)] +
        wait_term(block_down, ev.w_down[static_cast<std::size_t>(l - 1)]);
    ev.x_up[static_cast<std::size_t>(l - 1)] = pu * up_term + pd * down_term;
    if (l - 1 >= 1) {
      ev.w_up[static_cast<std::size_t>(l - 1)] =
          up_bundle_wait(l - 1, ev.x_up[static_cast<std::size_t>(l - 1)]);  // Eq. 23
    }
  }
  // Eq. 24: the injection channel has no redundant twin — M/G/1.
  ev.w_up[0] = queueing::mg1_wait_wormhole(lam(0), ev.x_up[0], sf);

  // Utilizations (diagnostics; also the stability verdict).
  for (int l = 0; l < n; ++l) {
    const int servers = (l >= 1) ? m : 1;
    ev.rho_up[static_cast<std::size_t>(l)] = queueing::utilization(
        lam(l) * servers, ev.x_up[static_cast<std::size_t>(l)], servers);
    ev.rho_down[static_cast<std::size_t>(l)] = queueing::utilization(
        lam(l), ev.x_down[static_cast<std::size_t>(l)], 1);
  }

  ev.inj_wait = ev.w_up[0];
  ev.inj_service = ev.x_up[0];
  ev.latency = ev.inj_wait + ev.inj_service + ev.mean_distance - 1.0;  // Eq. 25
  ev.stable = std::isfinite(ev.latency);
  for (double rho : ev.rho_up)
    if (rho >= 1.0) ev.stable = false;
  for (double rho : ev.rho_down)
    if (rho >= 1.0) ev.stable = false;
  return ev;
}

FatTreeEvaluation FatTreeModel::evaluate_load(double load_flits) const {
  return evaluate(load_flits / opts_.worm_flits);
}

double FatTreeModel::saturation_rate() const {
  // Eq. 26: find λ₀ with λ₀ · x̄⟨0,1⟩(λ₀) = 1.  x̄⟨0,1⟩ >= s_f pins the
  // root below 1/s_f.
  return find_saturation_rate(
      [this](double lambda0) { return evaluate(lambda0).inj_service; },
      1.0 / opts_.worm_flits);
}

double FatTreeModel::saturation_load() const {
  return saturation_rate() * opts_.worm_flits;
}

}  // namespace wormnet::core

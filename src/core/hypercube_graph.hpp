// wormnet/core/hypercube_graph.hpp
//
// Builder for the binary hypercube's collapsed channel graph under e-cube
// (ascending dimension-order) routing — the Draper & Ghosh setting the paper
// cites, expressed in the paper's §2 framework.
//
// Symmetry classes: one injection class, one class per dimension d (every
// directed dimension-d link carries the same load under uniform traffic),
// and one ejection class.  With N = 2^n and uniform destinations:
//   * rate per dimension-d link:     λ_d = λ₀ · N / (2 (N-1))   (all d equal)
//   * injection → dim d:             P(first differing bit is d)
//                                      = 2^(n-d-1) / (N-1)
//   * dim d → dim d' (d' > d):       2^-(d'-d)
//   * dim d → eject:                 2^-(n-1-d)
// (diff bits above d are i.i.d. fair coins once the message crosses dim d).
//
// Class labels: "inj", "dim0" … "dim{n-1}", "eject".
#pragma once

#include "core/general_model.hpp"

namespace wormnet::core {

/// Build the collapsed hypercube model for `dims` dimensions (N = 2^dims).
/// `lanes` sets a uniform virtual-channel multiplicity on every class; 1 is
/// the single-lane network of Draper & Ghosh.
GeneralModel build_hypercube_collapsed(int dims, int lanes = 1);

}  // namespace wormnet::core

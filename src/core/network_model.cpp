#include "core/network_model.hpp"

#include "core/saturation.hpp"

namespace wormnet::core {

int NetworkModel::class_id(const std::string& label) const {
  auto it = labels.find(label);
  WORMNET_EXPECTS(it != labels.end());
  return it->second;
}

SolveResult model_solve(const NetworkModel& net, double lambda0, SolveOptions base) {
  base.injection_scale = lambda0;
  return solve_general_model(net.graph, base);
}

LatencyEstimate model_latency(const NetworkModel& net, double lambda0,
                              SolveOptions base) {
  const SolveResult res = model_solve(net, lambda0, base);
  return estimate_latency(res, net.injection_classes, net.mean_distance);
}

double model_saturation_rate(const NetworkModel& net, SolveOptions base) {
  return find_saturation_rate(
      [&](double lambda0) {
        return model_latency(net, lambda0, base).inj_service;
      },
      1.0 / base.worm_flits);
}

}  // namespace wormnet::core

#include "core/network_model.hpp"

#include "core/saturation.hpp"
#include "util/assert.hpp"

namespace wormnet::core {

LatencyEstimate NetworkModel::evaluate_load(double load_flits) const {
  return evaluate(load_flits / worm_flits());
}

double NetworkModel::saturation_rate() const {
  const double sf = worm_flits();
  WORMNET_EXPECTS(sf > 0.0);
  // Eq. 26: find λ₀ with λ₀ · x̄_inj(λ₀) = 1.  x̄_inj >= s_f pins the root
  // below 1/s_f.
  return find_saturation_rate(
      [this](double lambda0) { return evaluate(lambda0).inj_service; },
      1.0 / sf);
}

double NetworkModel::saturation_load() const {
  return saturation_rate() * worm_flits();
}

}  // namespace wormnet::core

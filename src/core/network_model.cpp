#include "core/network_model.hpp"

#include "core/saturation.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace wormnet::core {

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Ok: return "ok";
    case SolveStatus::Saturated: return "saturated";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Disconnected: return "disconnected";
  }
  return "unknown";
}

std::uint64_t NetworkModel::content_digest() const {
  // The identity the base interface can observe.  Subclasses whose
  // evaluate() depends on more (channel graphs, lane knobs) mix that state
  // on top — see the header contract.
  const queueing::AblationOptions abl = ablation();
  std::uint64_t h = util::hash_bytes(name());
  h = util::hash_mix(h, (static_cast<std::uint64_t>(abl.multi_server) << 4) |
                           (static_cast<std::uint64_t>(abl.blocking_correction) << 3) |
                           (static_cast<std::uint64_t>(abl.erratum_2lambda) << 2) |
                           (static_cast<std::uint64_t>(abl.virtual_channels) << 1) |
                           static_cast<std::uint64_t>(abl.bursty_arrivals));
  h = util::hash_mix_double(h, worm_flits());
  h = util::hash_mix_double(h, arrival_ca2());
  h = util::hash_mix_double(h, arrival_batch_residual());
  return h;
}

LatencyEstimate NetworkModel::evaluate_load(double load_flits) const {
  return evaluate(load_flits / worm_flits());
}

double NetworkModel::saturation_rate() const {
  const double sf = worm_flits();
  WORMNET_EXPECTS(sf > 0.0);
  // Eq. 26: find λ₀ with λ₀ · x̄_inj(λ₀) = 1.  x̄_inj >= s_f pins the root
  // below 1/s_f.
  return find_saturation_rate(
      [this](double lambda0) { return evaluate(lambda0).inj_service; },
      1.0 / sf);
}

double NetworkModel::saturation_load() const {
  return saturation_rate() * worm_flits();
}

}  // namespace wormnet::core

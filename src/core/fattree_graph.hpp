// wormnet/core/fattree_graph.hpp
//
// Builder for the butterfly fat-tree's COLLAPSED channel graph: one class
// per (level, direction), exactly the symmetry reduction the paper performs
// in §3.2 ("links that are at the same level and run in the same direction
// are symmetrical").  The resulting 2n-class graph solved by the general
// model reproduces the closed-form FatTreeModel to machine precision — the
// repository's strongest internal consistency check.
//
// Class labels: "up0" (the injection channel ⟨0,1⟩) … "up{n-1}" (⟨n-1,n⟩),
// "down0" (the ejection channel ⟨1,0⟩) … "down{n-1}" (⟨n,n-1⟩).
#pragma once

#include "core/general_model.hpp"

namespace wormnet::core {

/// Build the collapsed fat-tree model for n = `levels` (N = 4^n).
/// Rates are per physical link at λ₀ = 1 (Eq. 14/15).  `parents` selects
/// the parent-link multiplicity: 2 is the paper's butterfly fat-tree;
/// other values model the GeneralizedFatTree (rates scale as (4/m)^l and
/// up bundles become m-server channels).
///
/// `exact_conditionals` replaces the paper's Eq. 22 branching probability
/// P↑_l with the exact conditional P↑_l / P↑_{l-1} — a message already on
/// channel ⟨l-1, l⟩ is known not to terminate below level l, a fact Eq. 22
/// ignores.  With it, the collapsed graph agrees with the exact-flow
/// per-channel graph (full_graph.hpp) to machine precision; without it, the
/// two differ by the (sub-0.1%) approximation error the paper accepts.
/// `lanes` sets a uniform virtual-channel multiplicity on every class (the
/// closed-form FatTreeModel's `lanes` option is its counterpart); 1 is the
/// paper's single-lane network.
GeneralModel build_fattree_collapsed(int levels, int parents = 2,
                                     bool exact_conditionals = false,
                                     int lanes = 1);

}  // namespace wormnet::core

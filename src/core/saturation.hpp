// wormnet/core/saturation.hpp
//
// The paper's throughput criterion (Eq. 26): the network saturates at the
// injection rate λ₀ where the source service time equals the inter-arrival
// time, x̄_inj(λ₀) = 1/λ₀.  Since x̄_inj is non-decreasing in λ₀ (more load
// can only slow channels down) and 1/λ₀ strictly decreases, the crossing is
// unique; we bracket and bisect, treating an unstable evaluation (infinite
// x̄) as "past saturation".
//
// Note on which limit binds: in the butterfly fat-tree an interior channel
// (the top-level up bundle) reaches utilization 1 — driving x̄_inj to
// infinity — slightly BEFORE the source criterion λ₀·x̄_inj = 1 is met, so
// the solver returns the stability boundary: the largest λ₀ the model can
// sustain.  That is exactly the load where the paper's "let the source
// arrival rate increase until the equation is satisfied" procedure stops,
// because x̄_inj jumps through 1/λ₀ at that point.
#pragma once

#include <functional>

namespace wormnet::core {

/// Find λ₀* with service_of(λ₀*) == 1/λ₀*.
///  * `service_of`  — λ₀ → x̄_inj (may return +inf past stability);
///  * `upper_bound` — any rate known to be at/above saturation, e.g. 1/s_f
///                    (the injection channel can never serve faster than one
///                    worm per s_f cycles);
///  * `iterations`  — bisection steps (each halves the bracket).
double find_saturation_rate(const std::function<double(double)>& service_of,
                            double upper_bound, int iterations = 60);

}  // namespace wormnet::core

// wormnet/core/channel_graph.hpp
//
// The channel-dependency representation behind the paper's general model
// (§2).  A network is reduced to classes of directed channels; channels in
// one class are statistically identical by symmetry (the butterfly fat-tree
// collapses to 2n classes), or classes may be individual physical channels
// when no symmetry exists (the mesh builder does this).
//
// Each class carries:
//  * `servers`       — m, the number of physical links arbitrated as one
//                      multi-server output bundle (the fat-tree's redundant
//                      parent pair has m = 2);
//  * `rate_per_link` — λ on each physical link AT UNIT INJECTION RATE
//                      (λ₀ = 1); the solver scales by the actual λ₀, which
//                      keeps saturation search from rebuilding the graph;
//  * `terminal`      — ejection channels whose service time is exactly the
//                      worm length s_f (the destination consumes one flit
//                      per cycle, the paper's assumption 4);
//  * transitions     — where messages leaving this channel continue.
//
// A transition out of class i into class j distinguishes two probabilities:
//  * `weight`     — the probability that a message on i continues into
//                   *some* channel of class j (weights sum to 1 for
//                   non-terminal classes); used to compose mean service time
//                   (Eq. 3);
//  * `route_prob` — R(i|j) of Eq. 10: the probability that the message
//                   heads to the *specific* output bundle it will traverse.
//                   In a collapsed-class graph these differ (a fat-tree
//                   down-continuation enters the down *class* w.p. 1 but a
//                   specific down link w.p. 1/4); in a per-physical-channel
//                   graph they coincide.
#pragma once

#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace wormnet::core {

/// A continuation edge in the channel dependency graph.
struct Transition {
  int target = -1;        ///< ChannelClass id entered next
  double weight = 0.0;    ///< probability of entering class `target`
  double route_prob = 0.0;///< R(i|j) toward the specific output bundle
};

/// One class of statistically identical directed channels.
struct ChannelClass {
  std::string label;          ///< human-readable tag for reports/tests
  int servers = 1;            ///< m of the output bundle this class is served by
  int lanes = 1;              ///< L, virtual channels multiplexed per physical link
  double rate_per_link = 0.0; ///< λ per physical link at unit injection rate
  bool terminal = false;      ///< true for ejection channels (x̄ = s_f)
  /// C_a², the squared coefficient of variation of this channel's arrival
  /// stream, consumed by the solver's Allen–Cunneen G/G/m wait.  1 is the
  /// paper's Poisson assumption; the traffic-model builder propagates
  /// injection burstiness here via GeneralModel::set_injection_ca2.
  double ca2 = 1.0;
  /// Structural burstiness retention in [0, 1]: the rate-weighted mean,
  /// over the sub-streams merging into this channel, of each sub-stream's
  /// fraction of its source's original injection process.  QNA merge/split
  /// algebra makes the channel's SCV affine in the injection SCV,
  ///     C_a²(ch) = 1 + (C_inj² − 1) · self_frac,
  /// so retuning a built model to a new arrival process is O(channels)
  /// (see core::build_traffic_model).  0 — full Poissonification — for
  /// hand-built graphs, which therefore ignore injection burstiness.
  double self_frac = 0.0;
  /// Link bandwidth b in flits/cycle (a service-time scale: s_f flits drain
  /// in s_f/b cycles).  1 is the paper's uniform network.
  double bandwidth = 1.0;
  /// Extra per-hop pipeline latency in cycles on top of the one-cycle hop.
  double link_latency = 0.0;
  /// Per-lane flit-buffer depth B (util::kInfiniteBufferDepth = the paper's
  /// unbounded buffering).  Finite B discounts the Eq. 9/10 blocking credit
  /// by B/(B+b) and caps the effective drain rate at b·B/(B+b).
  int buffer_depth = util::kInfiniteBufferDepth;
  std::vector<Transition> next;
};

/// The channel dependency graph the general model solves.
class ChannelGraph {
 public:
  /// Add a class; returns its id.
  int add_channel(ChannelClass c);

  /// Add a continuation from `from` to `to`.  `route_prob` defaults to
  /// `weight` (the per-physical-channel case).
  void add_transition(int from, int to, double weight, double route_prob = -1.0);

  /// Number of classes.
  int size() const { return static_cast<int>(classes_.size()); }
  /// Class by id.
  const ChannelClass& at(int id) const;
  /// Mutable class access (builders fix up rates after wiring).
  ChannelClass& mutable_at(int id);

  /// Check structural sanity: ids in range, weights of every non-terminal
  /// class sum to 1 (±1e-9), terminal classes have no transitions, rates are
  /// non-negative.  Returns an explanation or empty string when valid.
  std::string validate() const;

  /// Reverse-topological order of the dependency graph (terminals first):
  /// the order in which the paper resolves service times "from the last
  /// channel backwards to the injecting channel".  Empty when the graph has
  /// a cycle (the solver then falls back to damped fixed-point iteration).
  std::vector<int> reverse_topological_order() const;

  /// True if the dependency graph is acyclic.
  bool acyclic() const { return !reverse_topological_order().empty() || size() == 0; }

 private:
  std::vector<ChannelClass> classes_;
};

}  // namespace wormnet::core

// wormnet/core/full_graph.hpp
//
// Generic per-physical-channel model builder: one ChannelClass per directed
// channel of an arbitrary Topology, with rates and routing probabilities
// obtained by exact flow propagation over the topology's minimal routing
// function (adaptive candidates split evenly, matching the fat-tree's
// "select an up-link randomly" policy at the rate level).
//
// This serves two roles:
//  * it IS the analytical model for asymmetric networks — the k-ary n-mesh
//    under dimension-order routing has genuinely heterogeneous channel
//    rates, so no collapsed-class shortcut exists;
//  * for symmetric networks (fat-tree, hypercube) it cross-validates the
//    collapsed builders: the general solver must produce identical results
//    on both representations (tested).
//
// Cost is O(N² · path-length · path-multiplicity); fine for the network
// sizes where a per-channel model is interesting (N <= ~1k).
#pragma once

#include "core/general_model.hpp"
#include "topo/topology.hpp"

namespace wormnet::core {

/// Build the per-physical-channel model of `topo` under uniform traffic at
/// unit injection rate.  Labels: "ch{src}:{port}" for every channel.
GeneralModel build_full_channel_graph(const topo::Topology& topo);

}  // namespace wormnet::core

// wormnet/core/full_graph.hpp
//
// Generic per-physical-channel model builder for UNIFORM traffic: one
// ChannelClass per directed channel of an arbitrary Topology.  Since PR 2
// this is a thin wrapper over core::build_traffic_model (traffic_model.hpp)
// at TrafficSpec::uniform() — kept because "the uniform per-channel model of
// this topology" is the most common request and because it pins the
// traffic-aware builder to the paper's assumption-1 baseline (the parity
// tests against the hand-derived collapsed builders run through here).
//
// This serves two roles:
//  * it IS the analytical model for asymmetric networks — the k-ary n-mesh
//    under dimension-order routing has genuinely heterogeneous channel
//    rates, so no collapsed-class shortcut exists;
//  * for symmetric networks (fat-tree, hypercube) it cross-validates the
//    collapsed builders: the general solver must produce identical results
//    on both representations (tested).
#pragma once

#include "core/general_model.hpp"
#include "topo/topology.hpp"

namespace wormnet::core {

/// Build the per-physical-channel model of `topo` under uniform traffic at
/// unit injection rate.  Labels: "ch{src}:{port}" for every channel.
GeneralModel build_full_channel_graph(const topo::Topology& topo);

}  // namespace wormnet::core

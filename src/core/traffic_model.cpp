#include "core/traffic_model.hpp"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "topo/channels.hpp"

namespace wormnet::core {

namespace {

/// Scratch state for one destination's flow-propagation pass, reused across
/// destinations so the builder allocates O(nodes + channels) once.
struct DestinationPass {
  /// Per node: (incoming channel, flow) pairs accumulated this pass;
  /// kNoChannel marks source injections.
  std::vector<std::vector<std::pair<int, double>>> in_flows;
  std::vector<char> visited;
  std::vector<int> order;  ///< DFS postorder of the route DAG toward dst

  explicit DestinationPass(int num_nodes)
      : in_flows(static_cast<std::size_t>(num_nodes)),
        visited(static_cast<std::size_t>(num_nodes), 0) {}

  void reset() {
    for (int node : order) {
      in_flows[static_cast<std::size_t>(node)].clear();
      visited[static_cast<std::size_t>(node)] = 0;
    }
    order.clear();
  }
};

/// Iterative DFS from `start` following route(node, dst) edges, appending the
/// postorder to `pass.order`.  Reverse postorder is a topological order of
/// the route DAG (candidates strictly decrease the distance to dst, so the
/// graph is acyclic).
void dfs_route_dag(const topo::Topology& topo, int start, int dst,
                   DestinationPass& pass) {
  struct Frame {
    int node;
    int next_candidate;
    topo::RouteOptions opts;
  };
  if (pass.visited[static_cast<std::size_t>(start)]) return;
  std::vector<Frame> stack;
  stack.push_back({start, 0, topo.route(start, dst)});
  pass.visited[static_cast<std::size_t>(start)] = 1;
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_candidate >= top.opts.size()) {
      pass.order.push_back(top.node);
      stack.pop_back();
      continue;
    }
    const int port = top.opts[top.next_candidate++];
    const int nbr = topo.neighbor(top.node, port);
    WORMNET_ENSURES(nbr != topo::kNoNode);
    if (pass.visited[static_cast<std::size_t>(nbr)]) continue;
    pass.visited[static_cast<std::size_t>(nbr)] = 1;
    stack.push_back({nbr, 0, topo.route(nbr, dst)});
  }
}

}  // namespace

GeneralModel build_traffic_model(const topo::Topology& topo,
                                 const traffic::TrafficSpec& spec,
                                 const SolveOptions& opts) {
  const int procs = topo.num_processors();
  WORMNET_EXPECTS(procs >= 2);
  WORMNET_EXPECTS(spec.check(procs).empty());

  const topo::ChannelTable ct(topo);
  const int num_channels = ct.size();

  // Accumulators: total flow per channel, and per (channel, continuation
  // port) flow — the continuation port is on the channel's dst node, so a
  // small dense array per channel makes every update O(1).
  std::vector<double> rate(static_cast<std::size_t>(num_channels), 0.0);
  std::vector<std::vector<double>> onward(static_cast<std::size_t>(num_channels));
  for (int ch = 0; ch < num_channels; ++ch) {
    const int dst_node = ct.at(ch).dst_node;
    onward[static_cast<std::size_t>(ch)].assign(
        static_cast<std::size_t>(topo.num_ports(dst_node)), 0.0);
  }

  DestinationPass pass(topo.num_nodes());
  double weighted_distance = 0.0;

  for (int d = 0; d < procs; ++d) {
    // Seed the pass: every source with weight toward d injects its flow.
    for (int s = 0; s < procs; ++s) {
      if (s == d) continue;
      const double w = spec.pair_weight(s, d, procs);
      if (w <= 0.0) continue;
      weighted_distance += w * topo.distance(s, d);
      pass.in_flows[static_cast<std::size_t>(s)].push_back({topo::kNoChannel, w});
      dfs_route_dag(topo, s, d, pass);
    }
    // Propagate in topological order (reverse postorder): a node's in-flows
    // are complete before it splits them across its route candidates.
    for (auto it = pass.order.rbegin(); it != pass.order.rend(); ++it) {
      const int node = *it;
      const auto& inputs = pass.in_flows[static_cast<std::size_t>(node)];
      if (inputs.empty()) continue;  // d itself, or an unfed DFS visit
      WORMNET_ENSURES(node != d);    // flows into d are consumed, never split
      const topo::RouteOptions routes = topo.route(node, d);
      const std::array<double, 4> split = topo.route_split(node, d, routes);
      double total = 0.0;
      for (const auto& [in_ch, flow] : inputs) total += flow;
      for (int i = 0; i < routes.size(); ++i) {
        const double p = split[static_cast<std::size_t>(i)];
        if (p <= 0.0) continue;
        const int port = routes[i];
        const int ch = ct.from(node, port);
        WORMNET_ENSURES(ch != topo::kNoChannel);
        rate[static_cast<std::size_t>(ch)] += total * p;
        for (const auto& [in_ch, flow] : inputs) {
          if (in_ch == topo::kNoChannel) continue;
          onward[static_cast<std::size_t>(in_ch)][static_cast<std::size_t>(port)] +=
              flow * p;
        }
        const int nbr = topo.neighbor(node, port);
        if (nbr == d) continue;  // ejection channel: consumed at the destination
        pass.in_flows[static_cast<std::size_t>(nbr)].push_back({ch, total * p});
      }
    }
    pass.reset();
  }

  // Output-bundle membership: bundle_of[channel] is a dense id unique per
  // (node, bundle); bundle_size[channel] is its m.
  std::vector<int> bundle_of(static_cast<std::size_t>(num_channels), -1);
  std::vector<int> bundle_size(static_cast<std::size_t>(num_channels), 1);
  int next_bundle = 0;
  for (int node = 0; node < topo.num_nodes(); ++node) {
    for (const topo::PortBundle& pb : topo.output_bundles(node)) {
      for (int i = 0; i < pb.count; ++i) {
        const int ch = ct.from(node, pb[i]);
        if (ch == topo::kNoChannel) continue;
        bundle_of[static_cast<std::size_t>(ch)] = next_bundle;
        bundle_size[static_cast<std::size_t>(ch)] = pb.count;
      }
      ++next_bundle;
    }
  }

  GeneralModel net;
  for (int ch = 0; ch < num_channels; ++ch) {
    const topo::DirectedChannel& dc = ct.at(ch);
    ChannelClass c;
    c.label = "ch" + std::to_string(dc.src_node) + ":" + std::to_string(dc.src_port);
    c.servers = bundle_size[static_cast<std::size_t>(ch)];
    c.lanes = ct.lanes(ch);
    c.rate_per_link = rate[static_cast<std::size_t>(ch)];
    c.terminal = topo.is_processor(dc.dst_node);
    const int id = net.graph.add_channel(c);
    WORMNET_ENSURES(id == ch);  // 1:1 channel table <-> class ids
    net.labels[c.label] = id;
  }

  for (int ch = 0; ch < num_channels; ++ch) {
    const double total = rate[static_cast<std::size_t>(ch)];
    if (total <= 0.0) continue;
    const auto& out_flows = onward[static_cast<std::size_t>(ch)];
    const int node = ct.at(ch).dst_node;
    // Aggregate per-bundle flow for R(i|j) (route_prob targets the bundle,
    // not the specific link inside it).
    std::map<int, double> bundle_flow;
    for (int port = 0; port < static_cast<int>(out_flows.size()); ++port) {
      const double flow = out_flows[static_cast<std::size_t>(port)];
      if (flow <= 0.0) continue;
      const int next_ch = ct.from(node, port);
      bundle_flow[bundle_of[static_cast<std::size_t>(next_ch)]] += flow;
    }
    for (int port = 0; port < static_cast<int>(out_flows.size()); ++port) {
      const double flow = out_flows[static_cast<std::size_t>(port)];
      if (flow <= 0.0) continue;
      const int next_ch = ct.from(node, port);
      const double weight = flow / total;
      const double route_prob =
          bundle_flow[bundle_of[static_cast<std::size_t>(next_ch)]] / total;
      net.graph.add_transition(ch, next_ch, weight, route_prob);
    }
  }

  int injecting = 0;
  for (int p = 0; p < procs; ++p) {
    if (spec.injection_weight(p, procs) <= 0.0) continue;
    const int inj = ct.from(p, 0);
    WORMNET_ENSURES(inj != topo::kNoChannel);
    net.injection_classes.push_back(inj);
    ++injecting;
  }
  WORMNET_EXPECTS(injecting > 0);
  net.mean_distance = weighted_distance / injecting;
  net.model_name = "traffic(" + topo.name() + ", " + spec.name() + ")";
  net.opts = opts;

  const std::string problems = net.graph.validate();
  WORMNET_ENSURES(problems.empty());
  return net;
}

}  // namespace wormnet::core

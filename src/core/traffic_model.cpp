#include "core/traffic_model.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <utility>
#include <vector>

#include "topo/channels.hpp"
#include "util/thread_pool.hpp"

namespace wormnet::core {

namespace {

/// Shared worker pool for the default (threads = 0) builder.  Function-local
/// static: created on the first parallel build, sized to the hardware, and
/// reused by every subsequent build so small topologies don't pay a pool
/// spin-up per call.  Builds never run on this pool's own workers (the
/// builder is only ever called from user threads), so parallel_for's global
/// wait cannot deadlock.
util::ThreadPool& builder_pool() {
  static util::ThreadPool pool;
  return pool;
}

/// Cached routing of one node toward the pass destination: candidate ports,
/// their outgoing channel ids and far-end nodes, and the route_split
/// probabilities.  Filled once per visited node during the DFS and reused by
/// the propagation sweep, halving the virtual route()/route_split() calls —
/// the builder's hottest non-arithmetic cost.
struct NodeRoutes {
  int count = 0;
  std::array<int, 4> port{};
  std::array<int, 4> channel{};
  std::array<int, 4> neighbor{};
  std::array<double, 4> split{};
};

/// One merged flow fragment entering a node: where it came from, its rate,
/// and its QNA "self-mass" — the Σ flow_i · frac_i over the source
/// sub-streams it merges, where frac_i is sub-stream i's cumulative split
/// fraction of its source's original injection process.  Splitting with
/// probability p maps (flow, self) → (flow·p, self·p²) — each sub-stream's
/// flow AND frac both scale by p — and merging adds componentwise, so the
/// self-mass is exactly as shard-additive as the rate.
struct FlowFragment {
  int in_ch = 0;      ///< incoming channel; kNoChannel marks injections
  double flow = 0.0;  ///< message rate at unit injection
  double self = 0.0;  ///< Σ flow·frac of the merged source sub-streams
};

/// Scratch state for one destination's flow-propagation pass, reused across
/// the destinations of one shard so each worker allocates O(nodes +
/// channels) once.
struct DestinationPass {
  /// Per node: flow fragments accumulated this pass.
  std::vector<std::vector<FlowFragment>> in_flows;
  std::vector<char> visited;
  std::vector<int> order;           ///< DFS postorder of the route DAG toward dst
  std::vector<NodeRoutes> routes;   ///< valid for visited nodes only

  explicit DestinationPass(int num_nodes)
      : in_flows(static_cast<std::size_t>(num_nodes)),
        visited(static_cast<std::size_t>(num_nodes), 0),
        routes(static_cast<std::size_t>(num_nodes)) {}

  void reset() {
    for (int node : order) {
      in_flows[static_cast<std::size_t>(node)].clear();
      visited[static_cast<std::size_t>(node)] = 0;
    }
    order.clear();
  }
};

/// Private accumulators of one destination shard.  Each shard owns a full
/// copy of the per-channel totals; the reduction adds them back together in
/// fixed shard order so the result cannot depend on scheduling.
struct ShardAccum {
  std::vector<double> rate;    ///< per channel
  std::vector<double> self;    ///< per channel, QNA self-mass (see FlowFragment)
  std::vector<double> onward;  ///< flat (channel, continuation port) flows
  double weighted_distance = 0.0;
};

/// Iterative DFS from `start` following route(node, dst) edges, appending
/// the postorder to `pass.order` and caching each visited node's routing in
/// `pass.routes`.  Reverse postorder is a topological order of the route
/// DAG (candidates strictly decrease the distance to dst, so the graph is
/// acyclic).
void dfs_route_dag(const topo::Topology& topo, const topo::ChannelTable& ct,
                   int start, int dst, DestinationPass& pass) {
  struct Frame {
    int node;
    int next_candidate;
  };
  if (pass.visited[static_cast<std::size_t>(start)]) return;
  const auto visit = [&](int node) {
    pass.visited[static_cast<std::size_t>(node)] = 1;
    NodeRoutes& nr = pass.routes[static_cast<std::size_t>(node)];
    const topo::RouteOptions opts = topo.route(node, dst);
    nr.count = opts.size();
    if (nr.count == 0) return;  // dst itself: consume, nothing to cache
    const std::array<double, 4> split = topo.route_split(node, dst, opts);
    for (int i = 0; i < nr.count; ++i) {
      const int port = opts[i];
      nr.port[static_cast<std::size_t>(i)] = port;
      nr.channel[static_cast<std::size_t>(i)] = ct.from(node, port);
      nr.neighbor[static_cast<std::size_t>(i)] = topo.neighbor(node, port);
      nr.split[static_cast<std::size_t>(i)] = split[static_cast<std::size_t>(i)];
      WORMNET_ENSURES(nr.neighbor[static_cast<std::size_t>(i)] != topo::kNoNode);
    }
  };
  std::vector<Frame> stack;
  stack.push_back({start, 0});
  visit(start);
  while (!stack.empty()) {
    Frame& top = stack.back();
    const NodeRoutes& nr = pass.routes[static_cast<std::size_t>(top.node)];
    if (top.next_candidate >= nr.count) {
      pass.order.push_back(top.node);
      stack.pop_back();
      continue;
    }
    const int nbr = nr.neighbor[static_cast<std::size_t>(top.next_candidate++)];
    if (pass.visited[static_cast<std::size_t>(nbr)]) continue;
    visit(nbr);
    stack.push_back({nbr, 0});
  }
}

/// One shard's work: run the flow-propagation pass for every destination in
/// [dst_lo, dst_hi), accumulating into the shard's private buffers.
void run_shard(const topo::Topology& topo, const topo::ChannelTable& ct,
               const traffic::TrafficSpec& spec,
               const std::vector<int>& onward_off, int dst_lo, int dst_hi,
               ShardAccum& acc) {
  const int procs = topo.num_processors();
  acc.rate.assign(static_cast<std::size_t>(ct.size()), 0.0);
  acc.self.assign(static_cast<std::size_t>(ct.size()), 0.0);
  acc.onward.assign(static_cast<std::size_t>(onward_off.back()), 0.0);
  acc.weighted_distance = 0.0;

  DestinationPass pass(topo.num_nodes());
  for (int d = dst_lo; d < dst_hi; ++d) {
    // Seed the pass: every source with weight toward d injects its flow.
    // The (s → d) sub-stream is the destination split of s's injection
    // process: fraction w / injection_weight of it, hence self = w · frac.
    for (int s = 0; s < procs; ++s) {
      if (s == d) continue;
      const double w = spec.pair_weight(s, d, procs);
      if (w <= 0.0) continue;
      acc.weighted_distance += w * topo.distance(s, d);
      const double frac = w / spec.injection_weight(s, procs);
      pass.in_flows[static_cast<std::size_t>(s)].push_back(
          {topo::kNoChannel, w, w * frac});
      dfs_route_dag(topo, ct, s, d, pass);
    }
    // Propagate in topological order (reverse postorder): a node's in-flows
    // are complete before it splits them across its route candidates.
    for (auto it = pass.order.rbegin(); it != pass.order.rend(); ++it) {
      const int node = *it;
      const auto& inputs = pass.in_flows[static_cast<std::size_t>(node)];
      if (inputs.empty()) continue;  // d itself, or an unfed DFS visit
      WORMNET_ENSURES(node != d);    // flows into d are consumed, never split
      const NodeRoutes& nr = pass.routes[static_cast<std::size_t>(node)];
      double total = 0.0;
      double total_self = 0.0;
      for (const FlowFragment& in : inputs) {
        total += in.flow;
        total_self += in.self;
      }
      for (int i = 0; i < nr.count; ++i) {
        const double p = nr.split[static_cast<std::size_t>(i)];
        if (p <= 0.0) continue;
        const int port = nr.port[static_cast<std::size_t>(i)];
        const int ch = nr.channel[static_cast<std::size_t>(i)];
        WORMNET_ENSURES(ch != topo::kNoChannel);
        acc.rate[static_cast<std::size_t>(ch)] += total * p;
        acc.self[static_cast<std::size_t>(ch)] += total_self * p * p;
        for (const FlowFragment& in : inputs) {
          if (in.in_ch == topo::kNoChannel) continue;
          acc.onward[static_cast<std::size_t>(onward_off[static_cast<std::size_t>(in.in_ch)] + port)] +=
              in.flow * p;
        }
        const int nbr = nr.neighbor[static_cast<std::size_t>(i)];
        if (nbr == d) continue;  // ejection channel: consumed at the destination
        pass.in_flows[static_cast<std::size_t>(nbr)].push_back(
            {ch, total * p, total_self * p * p});
      }
    }
    pass.reset();
  }
}

}  // namespace

GeneralModel build_traffic_model(const topo::Topology& topo,
                                 const traffic::TrafficSpec& spec,
                                 const SolveOptions& opts,
                                 const TrafficBuildOptions& build) {
  const int procs = topo.num_processors();
  WORMNET_EXPECTS(procs >= 2);
  WORMNET_EXPECTS(spec.check(procs).empty());

  const topo::ChannelTable ct(topo);
  const int num_channels = ct.size();

  // Flat offsets for the per-(channel, continuation port) flows — the
  // continuation port is on the channel's dst node, so one dense slab with
  // per-channel offsets makes every update O(1) and cache-friendly.
  std::vector<int> onward_off(static_cast<std::size_t>(num_channels) + 1, 0);
  for (int ch = 0; ch < num_channels; ++ch) {
    onward_off[static_cast<std::size_t>(ch) + 1] =
        onward_off[static_cast<std::size_t>(ch)] +
        topo.num_ports(ct.at(ch).dst_node);
  }

  // Destination shards.  The shard count and boundaries depend on the
  // processor count ONLY — never on the worker count — and the reduction
  // below runs in shard order, so the built model is bitwise-identical for
  // every TrafficBuildOptions::threads value (tested).  16 shards caps the
  // parallel speedup at 16× while keeping the private-accumulator memory
  // (one rate+onward copy per shard) and the reduction cost negligible.
  const int num_shards = std::min(procs, 16);
  std::vector<ShardAccum> accs(static_cast<std::size_t>(num_shards));
  const auto shard_job = [&](std::int64_t j) {
    const int lo = static_cast<int>(j) * procs / num_shards;
    const int hi = (static_cast<int>(j) + 1) * procs / num_shards;
    run_shard(topo, ct, spec, onward_off, lo, hi,
              accs[static_cast<std::size_t>(j)]);
  };
  if (build.threads == 1 || num_shards == 1) {
    for (int j = 0; j < num_shards; ++j) shard_job(j);
  } else if (build.threads == 0) {
    util::parallel_for(builder_pool(), num_shards, shard_job);
  } else {
    util::ThreadPool pool(build.threads);
    util::parallel_for(pool, num_shards, shard_job);
  }

  // Deterministic reduction: shard partials added back in shard (i.e.
  // ascending destination-range) order.
  std::vector<double> rate(static_cast<std::size_t>(num_channels), 0.0);
  std::vector<double> self(static_cast<std::size_t>(num_channels), 0.0);
  std::vector<double> onward(static_cast<std::size_t>(onward_off.back()), 0.0);
  double weighted_distance = 0.0;
  for (const ShardAccum& acc : accs) {
    for (std::size_t i = 0; i < rate.size(); ++i) rate[i] += acc.rate[i];
    for (std::size_t i = 0; i < self.size(); ++i) self[i] += acc.self[i];
    for (std::size_t i = 0; i < onward.size(); ++i) onward[i] += acc.onward[i];
    weighted_distance += acc.weighted_distance;
  }

  // Output-bundle membership: bundle_of[channel] is a dense id unique per
  // (node, bundle); bundle_size[channel] is its m.
  std::vector<int> bundle_of(static_cast<std::size_t>(num_channels), -1);
  std::vector<int> bundle_size(static_cast<std::size_t>(num_channels), 1);
  int next_bundle = 0;
  for (int node = 0; node < topo.num_nodes(); ++node) {
    for (const topo::PortBundle& pb : topo.output_bundles(node)) {
      for (int i = 0; i < pb.count; ++i) {
        const int ch = ct.from(node, pb[i]);
        if (ch == topo::kNoChannel) continue;
        bundle_of[static_cast<std::size_t>(ch)] = next_bundle;
        bundle_size[static_cast<std::size_t>(ch)] = pb.count;
      }
      ++next_bundle;
    }
  }

  GeneralModel net;
  for (int ch = 0; ch < num_channels; ++ch) {
    const topo::DirectedChannel& dc = ct.at(ch);
    ChannelClass c;
    c.label = "ch" + std::to_string(dc.src_node) + ":" + std::to_string(dc.src_port);
    c.servers = bundle_size[static_cast<std::size_t>(ch)];
    c.lanes = ct.lanes(ch);
    c.rate_per_link = rate[static_cast<std::size_t>(ch)];
    c.terminal = topo.is_processor(dc.dst_node);
    // QNA burstiness retention.  Injection channels carry their source's
    // UNDIVIDED process — the destination split is logical, not physical,
    // so the fragment-level merge (which would treat the per-destination
    // sub-streams as independent and mostly Poissonify them) is overridden
    // with the exact value 1.  Downstream, the fragment-level sum is the
    // QNA split/merge approximation; min() guards the ≤ 1 invariant
    // against last-ulp float drift.
    if (topo.is_processor(dc.src_node)) {
      c.self_frac = 1.0;
    } else if (c.rate_per_link > 0.0) {
      c.self_frac = std::min(
          1.0, self[static_cast<std::size_t>(ch)] / c.rate_per_link);
    }
    const int id = net.graph.add_channel(c);
    WORMNET_ENSURES(id == ch);  // 1:1 channel table <-> class ids
    net.labels[c.label] = id;
  }

  // Small fixed-capacity (bundle → flow) map: a node's continuation ports
  // target a handful of output bundles (≤ ports, ≤ 11 on the 10-cube), so a
  // linear scan over a stack array beats the std::map this loop used to
  // allocate per channel.
  struct BundleFlow {
    int bundle = -1;
    double flow = 0.0;
  };
  for (int ch = 0; ch < num_channels; ++ch) {
    const double total = rate[static_cast<std::size_t>(ch)];
    if (total <= 0.0) continue;
    const int node = ct.at(ch).dst_node;
    const int base = onward_off[static_cast<std::size_t>(ch)];
    const int num_ports = onward_off[static_cast<std::size_t>(ch) + 1] - base;
    // Aggregate per-bundle flow for R(i|j) (route_prob targets the bundle,
    // not the specific link inside it).
    std::array<BundleFlow, 16> bundle_flow{};
    int bundles_used = 0;
    const auto bundle_total = [&](int bundle) -> double& {
      for (int i = 0; i < bundles_used; ++i) {
        if (bundle_flow[static_cast<std::size_t>(i)].bundle == bundle)
          return bundle_flow[static_cast<std::size_t>(i)].flow;
      }
      WORMNET_ENSURES(bundles_used < static_cast<int>(bundle_flow.size()));
      bundle_flow[static_cast<std::size_t>(bundles_used)].bundle = bundle;
      return bundle_flow[static_cast<std::size_t>(bundles_used++)].flow;
    };
    for (int port = 0; port < num_ports; ++port) {
      const double flow = onward[static_cast<std::size_t>(base + port)];
      if (flow <= 0.0) continue;
      const int next_ch = ct.from(node, port);
      bundle_total(bundle_of[static_cast<std::size_t>(next_ch)]) += flow;
    }
    for (int port = 0; port < num_ports; ++port) {
      const double flow = onward[static_cast<std::size_t>(base + port)];
      if (flow <= 0.0) continue;
      const int next_ch = ct.from(node, port);
      const double weight = flow / total;
      const double route_prob =
          bundle_total(bundle_of[static_cast<std::size_t>(next_ch)]) / total;
      net.graph.add_transition(ch, next_ch, weight, route_prob);
    }
  }

  int injecting = 0;
  for (int p = 0; p < procs; ++p) {
    if (spec.injection_weight(p, procs) <= 0.0) continue;
    const int inj = ct.from(p, 0);
    WORMNET_ENSURES(inj != topo::kNoChannel);
    net.injection_classes.push_back(inj);
    ++injecting;
  }
  WORMNET_EXPECTS(injecting > 0);
  net.mean_distance = weighted_distance / injecting;
  net.model_name = "traffic(" + topo.name() + ", " + spec.name() + ")";
  net.opts = opts;

  const std::string problems = net.graph.validate();
  WORMNET_ENSURES(problems.empty());
  return net;
}

}  // namespace wormnet::core

#include "core/traffic_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topo/channels.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace wormnet::core {

namespace {

/// Shared worker pool for the default (threads = 0) builder.  Function-local
/// static: created on the first parallel build, sized to the hardware, and
/// reused by every subsequent build so small topologies don't pay a pool
/// spin-up per call.  Builds never run on this pool's own workers (the
/// builder is only ever called from user threads), so parallel_for's global
/// wait cannot deadlock.
util::ThreadPool& builder_pool() {
  static util::ThreadPool pool;
  return pool;
}

/// Cached routing of one node toward the pass destination: candidate ports,
/// their outgoing channel ids and far-end nodes, and the route_split
/// probabilities.  Filled once per visited node during the DFS and reused by
/// the propagation sweep, halving the virtual route()/route_split() calls —
/// the builder's hottest non-arithmetic cost.
struct NodeRoutes {
  int count = 0;
  std::array<int, 4> port{};
  std::array<int, 4> channel{};
  std::array<int, 4> neighbor{};
  std::array<double, 4> split{};
};

/// One merged flow fragment entering a node: where it came from, its rate,
/// and its QNA "self-mass" — the Σ flow_i · frac_i over the source
/// sub-streams it merges, where frac_i is sub-stream i's cumulative split
/// fraction of its source's original injection process.  Splitting with
/// probability p maps (flow, self) → (flow·p, self·p²) — each sub-stream's
/// flow AND frac both scale by p — and merging adds componentwise, so the
/// self-mass is exactly as shard-additive as the rate.
struct FlowFragment {
  int in_ch = 0;      ///< incoming channel; kNoChannel marks injections
  double flow = 0.0;  ///< message rate at unit injection
  double self = 0.0;  ///< Σ flow·frac of the merged source sub-streams
};

/// Scratch state for one destination's flow-propagation pass, reused across
/// the destinations of one shard so each worker allocates O(nodes +
/// channels) once.
struct DestinationPass {
  /// Per node: flow fragments accumulated this pass.
  std::vector<std::vector<FlowFragment>> in_flows;
  std::vector<char> visited;
  std::vector<int> order;           ///< DFS postorder of the route DAG toward dst
  std::vector<NodeRoutes> routes;   ///< valid for visited nodes only

  explicit DestinationPass(int num_nodes)
      : in_flows(static_cast<std::size_t>(num_nodes)),
        visited(static_cast<std::size_t>(num_nodes), 0),
        routes(static_cast<std::size_t>(num_nodes)) {}

  void reset() {
    for (int node : order) {
      in_flows[static_cast<std::size_t>(node)].clear();
      visited[static_cast<std::size_t>(node)] = 0;
    }
    order.clear();
  }
};

/// Private accumulators of one destination shard.  Each shard owns a full
/// copy of the per-channel totals; the reduction adds them back together in
/// fixed shard order so the result cannot depend on scheduling.
struct ShardAccum {
  std::vector<double> rate;    ///< per channel
  std::vector<double> self;    ///< per channel, QNA self-mass (see FlowFragment)
  std::vector<double> onward;  ///< flat (channel, continuation port) flows
  double weighted_distance = 0.0;
  double total_weight = 0.0;       ///< Σ pair weights seen (all demand)
  double unroutable_weight = 0.0;  ///< Σ pair weights with no surviving path
};

/// Iterative DFS from `start` following route(node, dst) edges, appending
/// the postorder to `pass.order` and caching each visited node's routing in
/// `pass.routes`.  Reverse postorder is a topological order of the route
/// DAG (candidates strictly decrease the distance to dst, so the graph is
/// acyclic).
void dfs_route_dag(const topo::Topology& topo, const topo::ChannelTable& ct,
                   int start, int dst, DestinationPass& pass) {
  struct Frame {
    int node;
    int next_candidate;
  };
  if (pass.visited[static_cast<std::size_t>(start)]) return;
  const auto visit = [&](int node) {
    pass.visited[static_cast<std::size_t>(node)] = 1;
    NodeRoutes& nr = pass.routes[static_cast<std::size_t>(node)];
    const topo::RouteOptions opts = topo.route(node, dst);
    nr.count = opts.size();
    if (nr.count == 0) return;  // dst itself: consume, nothing to cache
    const std::array<double, 4> split = topo.route_split(node, dst, opts);
    for (int i = 0; i < nr.count; ++i) {
      const int port = opts[i];
      nr.port[static_cast<std::size_t>(i)] = port;
      nr.channel[static_cast<std::size_t>(i)] = ct.from(node, port);
      nr.neighbor[static_cast<std::size_t>(i)] = topo.neighbor(node, port);
      nr.split[static_cast<std::size_t>(i)] = split[static_cast<std::size_t>(i)];
      WORMNET_ENSURES(nr.neighbor[static_cast<std::size_t>(i)] != topo::kNoNode);
    }
  };
  std::vector<Frame> stack;
  stack.push_back({start, 0});
  visit(start);
  while (!stack.empty()) {
    Frame& top = stack.back();
    const NodeRoutes& nr = pass.routes[static_cast<std::size_t>(top.node)];
    if (top.next_candidate >= nr.count) {
      pass.order.push_back(top.node);
      stack.pop_back();
      continue;
    }
    const int nbr = nr.neighbor[static_cast<std::size_t>(top.next_candidate++)];
    if (pass.visited[static_cast<std::size_t>(nbr)]) continue;
    visit(nbr);
    stack.push_back({nbr, 0});
  }
}

/// The flow-propagation sweep over one destination's route DAG, shared by
/// the dense shard pass and the delta-retune pass (which differ only in
/// where the accumulations land and what seeded the DAG).  Walks
/// `pass.order` in reverse (topological order: a node's in-flows are
/// complete before it splits them across its route candidates) and emits
/// every accumulation through the two policy callbacks, in the exact order
/// the historical in-line loop performed them — the policies are inlined,
/// so shard builds stay bitwise-identical to the pre-refactor code:
///   add_rate(ch, flow, self)       — per-channel rate / QNA self-mass
///   add_onward(in_ch, port, flow)  — per-(channel, continuation port) flow
template <typename AddRate, typename AddOnward>
void propagate_flows(int d, DestinationPass& pass, AddRate&& add_rate,
                     AddOnward&& add_onward) {
  for (auto it = pass.order.rbegin(); it != pass.order.rend(); ++it) {
    const int node = *it;
    const auto& inputs = pass.in_flows[static_cast<std::size_t>(node)];
    if (inputs.empty()) continue;  // d itself, or an unfed DFS visit
    WORMNET_ENSURES(node != d);    // flows into d are consumed, never split
    const NodeRoutes& nr = pass.routes[static_cast<std::size_t>(node)];
    // A node holding flow toward d with no route candidates would silently
    // drop Kirchhoff mass.  Unroutable demand is filtered at the SEEDS
    // (Topology::reachable), so reaching this state means the topology is
    // malformed — name the node instead of corrupting the model.
    if (nr.count == 0)
      throw std::runtime_error(
          "build_traffic_model: flow toward destination " + std::to_string(d) +
          " dead-ends at node " + std::to_string(node) +
          " (no route candidates; disconnected or malformed topology — run "
          "topo::check_connectivity)");
    double total = 0.0;
    double total_self = 0.0;
    for (const FlowFragment& in : inputs) {
      total += in.flow;
      total_self += in.self;
    }
    for (int i = 0; i < nr.count; ++i) {
      const double p = nr.split[static_cast<std::size_t>(i)];
      if (p <= 0.0) continue;
      const int port = nr.port[static_cast<std::size_t>(i)];
      const int ch = nr.channel[static_cast<std::size_t>(i)];
      WORMNET_ENSURES(ch != topo::kNoChannel);
      add_rate(ch, total * p, total_self * p * p);
      for (const FlowFragment& in : inputs) {
        if (in.in_ch == topo::kNoChannel) continue;
        add_onward(in.in_ch, port, in.flow * p);
      }
      const int nbr = nr.neighbor[static_cast<std::size_t>(i)];
      if (nbr == d) continue;  // ejection channel: consumed at the destination
      pass.in_flows[static_cast<std::size_t>(nbr)].push_back(
          {ch, total * p, total_self * p * p});
    }
  }
}

/// One shard's work: run the flow-propagation pass for every destination in
/// [dst_lo, dst_hi), accumulating into the shard's private buffers.
/// `dest_sources`, when non-null, lists each destination's positive-weight
/// sources in ascending order — the seeds land in the same order with the
/// same values as the full scan (which skips w <= 0 anyway), so the sparse
/// path is bitwise-identical to the dense one, just without the O(N) scan
/// per destination that dominates fixed-permutation builds.
void run_shard(const topo::Topology& topo, const topo::ChannelTable& ct,
               const traffic::TrafficSpec& spec,
               const std::vector<int>& onward_off,
               const std::vector<std::vector<int>>* dest_sources, int dst_lo,
               int dst_hi, ShardAccum& acc) {
  const int procs = topo.num_processors();
  acc.rate.assign(static_cast<std::size_t>(ct.size()), 0.0);
  acc.self.assign(static_cast<std::size_t>(ct.size()), 0.0);
  acc.onward.assign(static_cast<std::size_t>(onward_off.back()), 0.0);
  acc.weighted_distance = 0.0;
  acc.total_weight = 0.0;
  acc.unroutable_weight = 0.0;

  DestinationPass pass(topo.num_nodes());
  for (int d = dst_lo; d < dst_hi; ++d) {
    // Seed the pass: every source with weight toward d injects its flow.
    // The (s → d) sub-stream is the destination split of s's injection
    // process: fraction w / injection_weight of it, hence self = w · frac.
    // Demand toward an unreachable destination (faulted fabrics) is dropped
    // at the source and counted — the model degrades instead of asserting.
    const auto seed = [&](int s) {
      const double w = spec.pair_weight(s, d, procs);
      if (w <= 0.0) return;
      acc.total_weight += w;
      if (!topo.reachable(s, d)) {
        acc.unroutable_weight += w;
        return;
      }
      acc.weighted_distance += w * topo.distance(s, d);
      const double frac = w / spec.injection_weight(s, procs);
      pass.in_flows[static_cast<std::size_t>(s)].push_back(
          {topo::kNoChannel, w, w * frac});
      dfs_route_dag(topo, ct, s, d, pass);
    };
    if (dest_sources != nullptr) {
      for (int s : (*dest_sources)[static_cast<std::size_t>(d)]) seed(s);
    } else {
      for (int s = 0; s < procs; ++s) {
        if (s != d) seed(s);
      }
    }
    propagate_flows(
        d, pass,
        [&](int ch, double flow, double self) {
          acc.rate[static_cast<std::size_t>(ch)] += flow;
          acc.self[static_cast<std::size_t>(ch)] += self;
        },
        [&](int in_ch, int port, double flow) {
          acc.onward[static_cast<std::size_t>(
              onward_off[static_cast<std::size_t>(in_ch)] + port)] += flow;
        });
    pass.reset();
  }
}

/// Output-bundle membership: bundle_of[channel] is a dense id unique per
/// (node, bundle); bundle_size[channel] is its server count m.
void label_bundles(const topo::Topology& topo, const topo::ChannelTable& ct,
                   std::vector<int>& bundle_of, std::vector<int>& bundle_size) {
  bundle_of.assign(static_cast<std::size_t>(ct.size()), -1);
  bundle_size.assign(static_cast<std::size_t>(ct.size()), 1);
  int next_bundle = 0;
  for (int node = 0; node < topo.num_nodes(); ++node) {
    for (const topo::PortBundle& pb : topo.output_bundles(node)) {
      for (int i = 0; i < pb.count; ++i) {
        const int ch = ct.from(node, pb[i]);
        if (ch == topo::kNoChannel) continue;
        bundle_of[static_cast<std::size_t>(ch)] = next_bundle;
        bundle_size[static_cast<std::size_t>(ch)] = pb.count;
      }
      ++next_bundle;
    }
  }
}

/// The symmetry-collapsed builder: one flow-propagation pass per destination
/// ORBIT, scaled by the orbit size, accumulated per channel CLASS.  With
/// classes that are true orbits of a routing-preserving group fixing the
/// spec's pins, Σ_{ch∈C} rate_d(ch) is the same for every destination d in
/// one orbit (the group maps the pass for d to the pass for g·d while
/// permuting C onto itself), so |orbit| × (representative pass) equals the
/// dense sum over the class exactly — the identity the parity tests pin
/// down.  Work and memory are O(orbits · channels) and O(classes²) instead
/// of the dense path's O(N · channels) passes and O(channels) state.
GeneralModel build_collapsed(const topo::Topology& topo,
                             const topo::ChannelTable& ct,
                             const traffic::TrafficSpec& spec,
                             const topo::SymmetryClasses& sym,
                             const SolveOptions& opts) {
  const int procs = topo.num_processors();
  const int num_channels = ct.size();
  const int ncls = sym.num_channel_classes;
  const int norb = sym.num_proc_orbits;
  WORMNET_EXPECTS(static_cast<int>(sym.proc_orbit.size()) == procs);
  WORMNET_EXPECTS(static_cast<int>(sym.channel_class.size()) == num_channels);
  WORMNET_EXPECTS(ncls > 0 && norb > 0);

  // Destination-orbit representatives (first member) and sizes.
  std::vector<int> orbit_rep(static_cast<std::size_t>(norb), -1);
  std::vector<double> orbit_size(static_cast<std::size_t>(norb), 0.0);
  for (int p = 0; p < procs; ++p) {
    const int o = sym.proc_orbit[static_cast<std::size_t>(p)];
    WORMNET_EXPECTS(o >= 0 && o < norb);
    if (orbit_rep[static_cast<std::size_t>(o)] < 0)
      orbit_rep[static_cast<std::size_t>(o)] = p;
    orbit_size[static_cast<std::size_t>(o)] += 1.0;
  }

  std::vector<int> bundle_of;
  std::vector<int> bundle_size;
  label_bundles(topo, ct, bundle_of, bundle_size);
  // Return-bundle ids: rev_bundle[ch] is the bundle a worm leaving ch would
  // use to go straight back.  Transitions into the return bundle form a
  // transition orbit distinct from same-class transitions away from it (a
  // fat-tree LCA turn never descends into the block it climbed out of), so
  // the structural fan-out count k below is tagged by return-ness.
  std::vector<int> rev_bundle(static_cast<std::size_t>(num_channels), -1);
  for (int ch = 0; ch < num_channels; ++ch) {
    rev_bundle[static_cast<std::size_t>(ch)] =
        bundle_of[static_cast<std::size_t>(ct.reverse(ch))];
  }

  std::vector<double> cls_rate(static_cast<std::size_t>(ncls), 0.0);
  std::vector<double> cls_self(static_cast<std::size_t>(ncls), 0.0);
  std::vector<double> trans(
      static_cast<std::size_t>(ncls) * static_cast<std::size_t>(ncls), 0.0);
  // Transition orbits observed during the passes, keyed (from-class,
  // to-class, into-the-return-bundle?).
  std::vector<unsigned char> seen_trans(
      static_cast<std::size_t>(ncls) * static_cast<std::size_t>(ncls) * 2, 0);
  double dist_sum = 0.0;
  double total_weight = 0.0;
  double unroutable_weight = 0.0;

  DestinationPass pass(topo.num_nodes());
  for (int o = 0; o < norb; ++o) {
    const int d = orbit_rep[static_cast<std::size_t>(o)];
    const double scale = orbit_size[static_cast<std::size_t>(o)];
    for (int s = 0; s < procs; ++s) {
      if (s == d) continue;
      const double w = spec.pair_weight(s, d, procs);
      if (w <= 0.0) continue;
      total_weight += scale * w;
      if (!topo.reachable(s, d)) {
        // Orbit transitivity extends the representative's unroutable pairs
        // to the whole orbit — exact for true routing symmetries.
        unroutable_weight += scale * w;
        continue;
      }
      dist_sum += scale * w * topo.distance(s, d);
      const double frac = w / spec.injection_weight(s, procs);
      pass.in_flows[static_cast<std::size_t>(s)].push_back(
          {topo::kNoChannel, w, w * frac});
      dfs_route_dag(topo, ct, s, d, pass);
    }
    // Same propagation as the dense run_shard, accumulating per class.
    for (auto it = pass.order.rbegin(); it != pass.order.rend(); ++it) {
      const int node = *it;
      const auto& inputs = pass.in_flows[static_cast<std::size_t>(node)];
      if (inputs.empty()) continue;
      WORMNET_ENSURES(node != d);
      const NodeRoutes& nr = pass.routes[static_cast<std::size_t>(node)];
      if (nr.count == 0)
        throw std::runtime_error(
            "build_traffic_model: flow toward destination " +
            std::to_string(d) + " dead-ends at node " + std::to_string(node) +
            " (no route candidates; disconnected or malformed topology — run "
            "topo::check_connectivity)");
      double total = 0.0;
      double total_self = 0.0;
      for (const FlowFragment& in : inputs) {
        total += in.flow;
        total_self += in.self;
      }
      for (int i = 0; i < nr.count; ++i) {
        const double p = nr.split[static_cast<std::size_t>(i)];
        if (p <= 0.0) continue;
        const int ch = nr.channel[static_cast<std::size_t>(i)];
        WORMNET_ENSURES(ch != topo::kNoChannel);
        const int co = sym.channel_class[static_cast<std::size_t>(ch)];
        cls_rate[static_cast<std::size_t>(co)] += scale * total * p;
        cls_self[static_cast<std::size_t>(co)] += scale * total_self * p * p;
        for (const FlowFragment& in : inputs) {
          if (in.in_ch == topo::kNoChannel) continue;
          const int ci = sym.channel_class[static_cast<std::size_t>(in.in_ch)];
          trans[static_cast<std::size_t>(ci) * static_cast<std::size_t>(ncls) +
                static_cast<std::size_t>(co)] += scale * in.flow * p;
          const int tag =
              bundle_of[static_cast<std::size_t>(ch)] ==
                      rev_bundle[static_cast<std::size_t>(in.in_ch)]
                  ? 1
                  : 0;
          seen_trans[(static_cast<std::size_t>(ci) *
                          static_cast<std::size_t>(ncls) +
                      static_cast<std::size_t>(co)) *
                         2 +
                     static_cast<std::size_t>(tag)] = 1;
        }
        const int nbr = nr.neighbor[static_cast<std::size_t>(i)];
        if (nbr == d) continue;
        pass.in_flows[static_cast<std::size_t>(nbr)].push_back(
            {ch, total * p, total_self * p * p});
      }
    }
    pass.reset();
  }

  // Class representatives and member counts; a class must be one queueing
  // station, so structural disagreement inside a class is a hard error even
  // for user-declared partitions (rate disagreement — a partition that is
  // no routing symmetry — is what check_collapsed_parity reports).
  std::vector<int> cls_rep(static_cast<std::size_t>(ncls), -1);
  std::vector<double> cls_count(static_cast<std::size_t>(ncls), 0.0);
  for (int ch = 0; ch < num_channels; ++ch) {
    const int c = sym.channel_class[static_cast<std::size_t>(ch)];
    WORMNET_EXPECTS(c >= 0 && c < ncls);
    if (cls_rep[static_cast<std::size_t>(c)] < 0)
      cls_rep[static_cast<std::size_t>(c)] = ch;
    cls_count[static_cast<std::size_t>(c)] += 1.0;
    const int rep = cls_rep[static_cast<std::size_t>(c)];
    WORMNET_EXPECTS(bundle_size[static_cast<std::size_t>(ch)] ==
                    bundle_size[static_cast<std::size_t>(rep)]);
    WORMNET_EXPECTS(ct.lanes(ch) == ct.lanes(rep));
    WORMNET_EXPECTS(ct.bandwidth(ch) == ct.bandwidth(rep));
    WORMNET_EXPECTS(ct.link_latency(ch) == ct.link_latency(rep));
    WORMNET_EXPECTS(ct.buffer_depth(ch) == ct.buffer_depth(rep));
    WORMNET_EXPECTS(topo.is_processor(ct.at(ch).dst_node) ==
                    topo.is_processor(ct.at(rep).dst_node));
    WORMNET_EXPECTS(topo.is_processor(ct.at(ch).src_node) ==
                    topo.is_processor(ct.at(rep).src_node));
  }

  GeneralModel net;
  for (int c = 0; c < ncls; ++c) {
    const int rep = cls_rep[static_cast<std::size_t>(c)];
    WORMNET_EXPECTS(rep >= 0);  // every class id must have members
    const topo::DirectedChannel& dc = ct.at(rep);
    ChannelClass cls;
    cls.label = "cls" + std::to_string(c) + "@ch" + std::to_string(dc.src_node) +
                ":" + std::to_string(dc.src_port);
    cls.servers = bundle_size[static_cast<std::size_t>(rep)];
    cls.lanes = ct.lanes(rep);
    // Link attributes from the representative — exact, because the EXPECTS
    // above pinned them constant across the class (and topology_symmetry
    // already fell back to dense when a declared class mixed attributes).
    cls.bandwidth = ct.bandwidth(rep);
    cls.link_latency = ct.link_latency(rep);
    cls.buffer_depth = ct.buffer_depth(rep);
    cls.rate_per_link =
        cls_rate[static_cast<std::size_t>(c)] / cls_count[static_cast<std::size_t>(c)];
    cls.terminal = topo.is_processor(dc.dst_node);
    // Same QNA pinning as the dense builder: injection channels carry their
    // source's undivided process.
    if (topo.is_processor(dc.src_node)) {
      cls.self_frac = 1.0;
    } else if (cls_rate[static_cast<std::size_t>(c)] > 0.0) {
      cls.self_frac = std::min(1.0, cls_self[static_cast<std::size_t>(c)] /
                                        cls_rate[static_cast<std::size_t>(c)]);
    }
    const int id = net.graph.add_channel(cls);
    WORMNET_ENSURES(id == c);
    net.labels[cls.label] = id;
  }

  // Transitions.  weight(C→C') folds the dense per-channel weights; the
  // dense route_prob targets ONE output bundle, so divide by the structural
  // fan-out k = how many distinct bundles of class C' the representative
  // member feeds.  k is counted at the representative's far-end node against
  // the transition orbits observed above — e.g. a fat-tree up channel
  // turning down feeds 3 of the 4 child bundles (never the one it climbed
  // out of, which is why return-ness tags the orbits), so k = 3 and
  // route_prob = weight/3, the dense pd/3.  Orbit transitivity spreads the
  // class flow equally over those k bundles, so weight/k is the dense
  // per-bundle probability exactly.
  std::vector<int> fanout(static_cast<std::size_t>(ncls), 0);
  std::vector<int> touched;
  std::vector<int> seen_bundles;
  for (int ci = 0; ci < ncls; ++ci) {
    if (net.graph.at(ci).terminal) continue;
    const double total = cls_rate[static_cast<std::size_t>(ci)];
    if (total <= 0.0) continue;
    const int rep = cls_rep[static_cast<std::size_t>(ci)];
    const int node = ct.at(rep).dst_node;
    const int ret = rev_bundle[static_cast<std::size_t>(rep)];
    touched.clear();
    seen_bundles.clear();
    for (int port = 0; port < topo.num_ports(node); ++port) {
      const int out_ch = ct.from(node, port);
      if (out_ch == topo::kNoChannel) continue;
      const int b = bundle_of[static_cast<std::size_t>(out_ch)];
      if (std::find(seen_bundles.begin(), seen_bundles.end(), b) !=
          seen_bundles.end()) {
        continue;
      }
      seen_bundles.push_back(b);
      const int cj = sym.channel_class[static_cast<std::size_t>(out_ch)];
      const int tag = b == ret ? 1 : 0;
      if (seen_trans[(static_cast<std::size_t>(ci) *
                          static_cast<std::size_t>(ncls) +
                      static_cast<std::size_t>(cj)) *
                         2 +
                     static_cast<std::size_t>(tag)]) {
        if (fanout[static_cast<std::size_t>(cj)] == 0) touched.push_back(cj);
        ++fanout[static_cast<std::size_t>(cj)];
      }
    }
    for (int cj = 0; cj < ncls; ++cj) {
      const double flow = trans[static_cast<std::size_t>(ci) *
                                    static_cast<std::size_t>(ncls) +
                                static_cast<std::size_t>(cj)];
      if (flow <= 0.0) continue;
      const double weight = std::min(1.0, flow / total);
      const int k = std::max(1, fanout[static_cast<std::size_t>(cj)]);
      net.graph.add_transition(ci, cj, weight, weight / static_cast<double>(k));
    }
    for (int cj : touched) fanout[static_cast<std::size_t>(cj)] = 0;
  }

  // One injection entry per injection class, weighted by how many
  // processors it stands for — the weighted latency average then equals the
  // dense per-processor uniform average.
  std::vector<double> inj_weight(static_cast<std::size_t>(ncls), 0.0);
  int injecting = 0;
  for (int p = 0; p < procs; ++p) {
    if (spec.injection_weight(p, procs) <= 0.0) continue;
    const int inj = ct.from(p, 0);
    WORMNET_ENSURES(inj != topo::kNoChannel);
    inj_weight[static_cast<std::size_t>(
        sym.channel_class[static_cast<std::size_t>(inj)])] += 1.0;
    ++injecting;
  }
  WORMNET_EXPECTS(injecting > 0);
  for (int c = 0; c < ncls; ++c) {
    if (inj_weight[static_cast<std::size_t>(c)] <= 0.0) continue;
    net.injection_classes.push_back(c);
    net.injection_class_weights.push_back(inj_weight[static_cast<std::size_t>(c)]);
  }
  net.mean_distance = dist_sum / injecting;
  net.unroutable_fraction =
      total_weight > 0.0 ? unroutable_weight / total_weight : 0.0;
  net.channel_class_of = sym.channel_class;
  net.model_name = "traffic-sym(" + topo.name() + ", " + spec.name() + ")";
  net.opts = opts;

  const std::string problems = net.graph.validate();
  WORMNET_ENSURES(problems.empty());
  return net;
}

/// The resolved build strategy of one (spec, build-options) pair — the
/// ladder build_traffic_model historically ran in-line, extracted so the
/// delta-retune path can re-plan against a NEW spec with identical rules.
struct CollapsePlan {
  bool use_collapsed = false;       ///< symmetric quotient applies
  topo::SymmetryClasses sym;        ///< valid when use_collapsed
  bool sparse_seed = false;         ///< fixed-destination source lists apply
  std::vector<std::vector<int>> dest_sources;  ///< valid when sparse_seed
};

/// Collapse strategy: symmetric quotient first (a user-declared partition
/// wins over the topology's own hooks), sparse seeding second, dense last.
/// Precondition failure when Symmetric was demanded but nothing declares a
/// quotient.
CollapsePlan plan_collapse(const topo::Topology& topo,
                           const topo::ChannelTable& ct,
                           const traffic::TrafficSpec& spec,
                           const TrafficBuildOptions& build) {
  const int procs = topo.num_processors();
  CollapsePlan plan;
  if (build.collapse == CollapseMode::Dense) return plan;
  if (build.collapse != CollapseMode::Sparse) {
    bool have = false;
    if (build.user_classes != nullptr) {
      plan.sym = *build.user_classes;
      have = true;
    } else {
      std::vector<int> pins;
      if (spec.symmetric(pins)) {
        have = topo::topology_symmetry(topo, ct, pins, plan.sym) &&
               !plan.sym.trivial(procs);
        if (build.collapse == CollapseMode::Auto) {
          have = have && plan.sym.num_channel_classes <= build.max_symmetry_classes;
        }
      }
    }
    if (have) {
      plan.use_collapsed = true;
      return plan;
    }
    // The quotient was demanded outright but nothing declares one.
    WORMNET_EXPECTS(build.collapse != CollapseMode::Symmetric);
  }
  if (spec.fixed_destination(0, procs) >= 0) {
    plan.dest_sources.assign(static_cast<std::size_t>(procs), {});
    for (int s = 0; s < procs; ++s) {
      const int d = spec.fixed_destination(s, procs);
      // Ascending s per destination: identical seed order to the scan.
      plan.dest_sources[static_cast<std::size_t>(d)].push_back(s);
    }
    plan.sparse_seed = true;
  }
  return plan;
}

/// The dense builder's retained intermediate: everything the assembly step
/// consumes, and — because the flow DP is LINEAR in its (src, dst) seeds —
/// everything a delta-retune needs to update in place when pair weights
/// change (RetunableTrafficModel).
struct DenseFlowState {
  std::vector<int> onward_off;   ///< flat (channel, continuation port) offsets
  std::vector<int> bundle_of;    ///< output-bundle id per channel
  std::vector<int> bundle_size;  ///< m of that bundle
  std::vector<double> rate;      ///< per channel, unit injection
  std::vector<double> self;      ///< per channel, QNA self-mass
  std::vector<double> onward;    ///< flat continuation flows
  double weighted_distance = 0.0;
  double total_weight = 0.0;       ///< Σ pair weights (all demand)
  double unroutable_weight = 0.0;  ///< Σ pair weights dropped at the source
};

/// Run the sharded per-destination passes for the whole spec, filling
/// `st` (replacing any previous contents).
void propagate_dense(const topo::Topology& topo, const topo::ChannelTable& ct,
                     const traffic::TrafficSpec& spec,
                     const TrafficBuildOptions& build,
                     const std::vector<std::vector<int>>* dest_sources,
                     DenseFlowState& st) {
  const int procs = topo.num_processors();
  const int num_channels = ct.size();

  // Flat offsets for the per-(channel, continuation port) flows — the
  // continuation port is on the channel's dst node, so one dense slab with
  // per-channel offsets makes every update O(1) and cache-friendly.
  st.onward_off.assign(static_cast<std::size_t>(num_channels) + 1, 0);
  for (int ch = 0; ch < num_channels; ++ch) {
    st.onward_off[static_cast<std::size_t>(ch) + 1] =
        st.onward_off[static_cast<std::size_t>(ch)] +
        topo.num_ports(ct.at(ch).dst_node);
  }

  // Destination shards.  The shard count and boundaries depend on the
  // processor count ONLY — never on the worker count — and the reduction
  // below runs in shard order, so the built model is bitwise-identical for
  // every TrafficBuildOptions::threads value (tested).  16 shards caps the
  // parallel speedup at 16× while keeping the private-accumulator memory
  // (one rate+onward copy per shard) and the reduction cost negligible.
  const int num_shards = std::min(procs, 16);
  std::vector<ShardAccum> accs(static_cast<std::size_t>(num_shards));
  const auto shard_job = [&](std::int64_t j) {
    const int lo = static_cast<int>(j) * procs / num_shards;
    const int hi = (static_cast<int>(j) + 1) * procs / num_shards;
    run_shard(topo, ct, spec, st.onward_off, dest_sources, lo, hi,
              accs[static_cast<std::size_t>(j)]);
  };
  // threads = 0 ("auto") also runs serially below the cutoff: at those sizes
  // the fork/join overhead exceeds the whole build, and the fixed-shard
  // contract makes the fallback bitwise-invisible (tested either side of
  // the boundary).
  if (build.threads == 1 || num_shards == 1 ||
      (build.threads == 0 &&
       procs <= TrafficBuildOptions::kSerialCutoffProcs)) {
    for (int j = 0; j < num_shards; ++j) shard_job(j);
  } else if (build.threads == 0) {
    util::parallel_for(builder_pool(), num_shards, shard_job);
  } else {
    util::ThreadPool pool(build.threads);
    util::parallel_for(pool, num_shards, shard_job);
  }

  // Deterministic reduction: shard partials added back in shard (i.e.
  // ascending destination-range) order.
  st.rate.assign(static_cast<std::size_t>(num_channels), 0.0);
  st.self.assign(static_cast<std::size_t>(num_channels), 0.0);
  st.onward.assign(static_cast<std::size_t>(st.onward_off.back()), 0.0);
  st.weighted_distance = 0.0;
  st.total_weight = 0.0;
  st.unroutable_weight = 0.0;
  for (const ShardAccum& acc : accs) {
    for (std::size_t i = 0; i < st.rate.size(); ++i) st.rate[i] += acc.rate[i];
    for (std::size_t i = 0; i < st.self.size(); ++i) st.self[i] += acc.self[i];
    for (std::size_t i = 0; i < st.onward.size(); ++i)
      st.onward[i] += acc.onward[i];
    st.weighted_distance += acc.weighted_distance;
    st.total_weight += acc.total_weight;
    st.unroutable_weight += acc.unroutable_weight;
  }

  label_bundles(topo, ct, st.bundle_of, st.bundle_size);
}

/// Assemble the per-physical-channel GeneralModel from a propagated flow
/// state: channel classes, transitions, injection classes, mean distance.
/// O(channels + transitions) — the cheap tail every delta-retune re-runs.
GeneralModel assemble_dense(const topo::Topology& topo,
                            const topo::ChannelTable& ct,
                            const traffic::TrafficSpec& spec,
                            const SolveOptions& opts,
                            const DenseFlowState& st) {
  const int procs = topo.num_processors();
  const int num_channels = ct.size();
  const std::vector<double>& rate = st.rate;
  const std::vector<double>& self = st.self;
  const std::vector<double>& onward = st.onward;
  const std::vector<int>& onward_off = st.onward_off;
  const std::vector<int>& bundle_of = st.bundle_of;
  const std::vector<int>& bundle_size = st.bundle_size;

  GeneralModel net;
  for (int ch = 0; ch < num_channels; ++ch) {
    const topo::DirectedChannel& dc = ct.at(ch);
    ChannelClass c;
    c.label = "ch" + std::to_string(dc.src_node) + ":" + std::to_string(dc.src_port);
    c.servers = bundle_size[static_cast<std::size_t>(ch)];
    c.lanes = ct.lanes(ch);
    c.bandwidth = ct.bandwidth(ch);
    c.link_latency = ct.link_latency(ch);
    c.buffer_depth = ct.buffer_depth(ch);
    c.rate_per_link = rate[static_cast<std::size_t>(ch)];
    c.terminal = topo.is_processor(dc.dst_node);
    // QNA burstiness retention.  Injection channels carry their source's
    // UNDIVIDED process — the destination split is logical, not physical,
    // so the fragment-level merge (which would treat the per-destination
    // sub-streams as independent and mostly Poissonify them) is overridden
    // with the exact value 1.  Downstream, the fragment-level sum is the
    // QNA split/merge approximation; min() guards the ≤ 1 invariant
    // against last-ulp float drift.
    if (topo.is_processor(dc.src_node)) {
      c.self_frac = 1.0;
    } else if (c.rate_per_link > 0.0) {
      c.self_frac = std::min(
          1.0, self[static_cast<std::size_t>(ch)] / c.rate_per_link);
    }
    const int id = net.graph.add_channel(c);
    WORMNET_ENSURES(id == ch);  // 1:1 channel table <-> class ids
    net.labels[c.label] = id;
  }

  // Small fixed-capacity (bundle → flow) map: a node's continuation ports
  // target a handful of output bundles (≤ ports, ≤ 11 on the 10-cube), so a
  // linear scan over a stack array beats the std::map this loop used to
  // allocate per channel.
  struct BundleFlow {
    int bundle = -1;
    double flow = 0.0;
  };
  for (int ch = 0; ch < num_channels; ++ch) {
    const double total = rate[static_cast<std::size_t>(ch)];
    if (total <= 0.0) continue;
    const int node = ct.at(ch).dst_node;
    const int base = onward_off[static_cast<std::size_t>(ch)];
    const int num_ports = onward_off[static_cast<std::size_t>(ch) + 1] - base;
    // Aggregate per-bundle flow for R(i|j) (route_prob targets the bundle,
    // not the specific link inside it).
    std::array<BundleFlow, 16> bundle_flow{};
    int bundles_used = 0;
    const auto bundle_total = [&](int bundle) -> double& {
      for (int i = 0; i < bundles_used; ++i) {
        if (bundle_flow[static_cast<std::size_t>(i)].bundle == bundle)
          return bundle_flow[static_cast<std::size_t>(i)].flow;
      }
      WORMNET_ENSURES(bundles_used < static_cast<int>(bundle_flow.size()));
      bundle_flow[static_cast<std::size_t>(bundles_used)].bundle = bundle;
      return bundle_flow[static_cast<std::size_t>(bundles_used++)].flow;
    };
    for (int port = 0; port < num_ports; ++port) {
      const double flow = onward[static_cast<std::size_t>(base + port)];
      if (flow <= 0.0) continue;
      const int next_ch = ct.from(node, port);
      bundle_total(bundle_of[static_cast<std::size_t>(next_ch)]) += flow;
    }
    for (int port = 0; port < num_ports; ++port) {
      const double flow = onward[static_cast<std::size_t>(base + port)];
      if (flow <= 0.0) continue;
      const int next_ch = ct.from(node, port);
      const double weight = flow / total;
      const double route_prob =
          bundle_total(bundle_of[static_cast<std::size_t>(next_ch)]) / total;
      net.graph.add_transition(ch, next_ch, weight, route_prob);
    }
  }

  int injecting = 0;
  for (int p = 0; p < procs; ++p) {
    if (spec.injection_weight(p, procs) <= 0.0) continue;
    const int inj = ct.from(p, 0);
    WORMNET_ENSURES(inj != topo::kNoChannel);
    net.injection_classes.push_back(inj);
    ++injecting;
  }
  WORMNET_EXPECTS(injecting > 0);
  net.mean_distance = st.weighted_distance / injecting;
  net.unroutable_fraction =
      st.total_weight > 0.0 ? st.unroutable_weight / st.total_weight : 0.0;
  net.model_name = "traffic(" + topo.name() + ", " + spec.name() + ")";
  net.opts = opts;

  const std::string problems = net.graph.validate();
  WORMNET_ENSURES(problems.empty());
  return net;
}

}  // namespace

GeneralModel build_traffic_model(const topo::Topology& topo,
                                 const traffic::TrafficSpec& spec,
                                 const SolveOptions& opts,
                                 const TrafficBuildOptions& build) {
  WORMNET_SPAN("build_traffic_model", "build");
  const int procs = topo.num_processors();
  WORMNET_EXPECTS(procs >= 2);
  WORMNET_EXPECTS(spec.check(procs).empty());

  const topo::ChannelTable ct(topo);
  CollapsePlan plan = plan_collapse(topo, ct, spec, build);
  if (plan.use_collapsed)
    return build_collapsed(topo, ct, spec, plan.sym, opts);

  DenseFlowState st;
  propagate_dense(topo, ct, spec, build,
                  plan.sparse_seed ? &plan.dest_sources : nullptr, st);
  return assemble_dense(topo, ct, spec, opts, st);
}

GeneralModel build_traffic_model_collapsed(const topo::Topology& topo,
                                           const traffic::TrafficSpec& spec,
                                           const SolveOptions& opts,
                                           TrafficBuildOptions build) {
  build.collapse = CollapseMode::Auto;
  return build_traffic_model(topo, spec, opts, build);
}

namespace {

/// Kill the floating residues a delta pass leaves where the true value is 0.
///
/// Delta contributions are bit-exact negatives of the original products
/// (multiplication by the signed seed distributes identically), so the only
/// error is re-associated ADDITION: subtracting a subset of a positive sum
/// in a different order leaves O(n·ulp·magnitude) residue — including tiny
/// NEGATIVE rates, which ChannelGraph::validate() rejects, and phantom
/// onward flows that would fabricate transitions into rate-0 channels.
/// Snap rate/onward values below a scale-aware epsilon to exactly 0; clamp
/// self-mass negatives only (tiny positive self is harmless and may be
/// legitimate — self magnitudes sit orders below rates).
///
/// The epsilon is CHANNEL-LOCAL: residues left by a delta pass scale with
/// the magnitudes that were summed at that channel (bounded by its own
/// rate), never with the network-wide maximum.  A single global
/// 1e-9·(1 + max_rate) epsilon — the previous rule — zeroes a legitimate
/// small flow whenever the rates span orders of magnitude (a skewed matrix
/// pattern, or the small flows a heterogeneous slow tier legitimately
/// carries next to a hot fast tier), silently dropping Kirchhoff mass.
/// Rates use the absolute 1e-9 floor (a channel whose history cancelled to
/// zero holds only its own residue); onward flows are bounded by their
/// channel's rate, so their epsilon is 1e-9·(1 + rate[ch]).  Legitimate
/// flows below 1e-9 messages/cycle at unit injection are physically
/// negligible by construction.
void snap_residues(DenseFlowState& st) {
  for (std::size_t ch = 0; ch < st.rate.size(); ++ch) {
    double& r = st.rate[ch];
    if (std::abs(r) < 1e-9) r = 0.0;
    WORMNET_ENSURES(r >= 0.0);  // beyond-residue negatives are a real bug
    const double eps = 1e-9 * (1.0 + r);
    double& s = st.self[ch];
    if (s < 0.0) {
      WORMNET_ENSURES(s > -eps);
      s = 0.0;
    }
    for (int k = st.onward_off[ch]; k < st.onward_off[ch + 1]; ++k) {
      double& v = st.onward[static_cast<std::size_t>(k)];
      if (std::abs(v) < eps) v = 0.0;
      WORMNET_ENSURES(v >= 0.0);
    }
  }
  // A channel whose rate vanished keeps no self-mass or continuation flows
  // (assembly would skip them behind the rate > 0 guard; keep the retained
  // state itself consistent so later deltas start clean).
  for (std::size_t ch = 0; ch < st.rate.size(); ++ch) {
    if (st.rate[ch] > 0.0) continue;
    st.self[ch] = 0.0;
    for (int k = st.onward_off[ch]; k < st.onward_off[ch + 1]; ++k) {
      st.onward[static_cast<std::size_t>(k)] = 0.0;
    }
  }
}

}  // namespace

/// Everything a resident model retains between retunes: the channel table,
/// the dense flow state (when dense), the current spec, and the recorded
/// lane/load/arrival tunes to re-apply after any reassembly.
struct RetunableTrafficModel::Impl {
  const topo::Topology* topo;
  topo::ChannelTable ct;
  traffic::TrafficSpec spec;
  SolveOptions opts;
  TrafficBuildOptions build;
  bool is_collapsed = false;
  DenseFlowState state;    ///< valid only when !is_collapsed
  int lanes_override = 0;  ///< 0: the topology's own lane counts
  int buffers_override = 0;  ///< 0: the topology's own buffer depths
  double bandwidth_scale = 1.0;  ///< on top of the topology's bandwidths
  double load_scale = 1.0;
  double tuned_ca2 = 1.0;
  double tuned_residual = 0.0;
  /// One-shot warn gate for the collapsed→dense fault fallback below: big
  /// N−1 sweeps trip the branch once per resident, not once per scenario.
  bool warned_collapsed_fault = false;
  /// Active fault view, shared (immutable after construction) so the default
  /// Impl copy stays cheap and clones of a faulted resident share the
  /// survivor BFS tables.  Null = healthy fabric.
  std::shared_ptr<const topo::FaultSet> fault_set;
  std::shared_ptr<const topo::FaultedTopology> faulted;
  GeneralModel net;

  Impl(const topo::Topology& t, traffic::TrafficSpec s, const SolveOptions& o,
       const TrafficBuildOptions& b)
      : topo(&t), ct(t), spec(std::move(s)), opts(o), build(b) {}

  /// The topology all routing-sensitive work runs against: the fault view
  /// when one is active, else the healthy base.  The channel STRUCTURE is
  /// identical either way (FaultedTopology's stability contract), so `ct`
  /// and every per-channel array stay valid across fault retunes.
  const topo::Topology& routing_topo() const {
    return faulted ? static_cast<const topo::Topology&>(*faulted) : *topo;
  }

  /// Re-apply the recorded lane/load/arrival tunes onto a freshly
  /// (re)assembled model.  Order matters only for documentation: each tune
  /// touches a disjoint ChannelClass field (lanes / rate_per_link / ca2).
  void apply_tunes() {
    if (lanes_override >= 1) net.set_uniform_lanes(lanes_override);
    if (buffers_override >= 1) net.set_uniform_buffers(buffers_override);
    if (bandwidth_scale != 1.0) scale_model_bandwidths(bandwidth_scale);
    if (load_scale != 1.0) net.scale_injection_rates(load_scale);
    if (tuned_ca2 != 1.0 || tuned_residual != 0.0) {
      net.set_injection_ca2(tuned_ca2);
      net.injection_batch_residual = tuned_residual;
    }
  }

  /// Multiply every resident class's bandwidth by `factor` — applied on top
  /// of whatever the (possibly tapered) topology assembled, so the taper
  /// shape survives reassembly.
  void scale_model_bandwidths(double factor) {
    std::vector<double> bw(static_cast<std::size_t>(net.graph.size()));
    for (int id = 0; id < net.graph.size(); ++id)
      bw[static_cast<std::size_t>(id)] = net.graph.at(id).bandwidth * factor;
    net.set_channel_bandwidths(bw);
  }

  /// Cold build for `new_spec` along the planned strategy, replacing the
  /// resident model and flow state.
  void rebuild_cold(const traffic::TrafficSpec& new_spec,
                    const CollapsePlan& plan) {
    WORMNET_SPAN("resident_rebuild_cold", "build");
    const topo::Topology& rt = routing_topo();
    if (plan.use_collapsed) {
      net = build_collapsed(rt, ct, new_spec, plan.sym, opts);
      is_collapsed = true;
      state = DenseFlowState{};
    } else {
      propagate_dense(rt, ct, new_spec, build,
                      plan.sparse_seed ? &plan.dest_sources : nullptr, state);
      net = assemble_dense(rt, ct, new_spec, opts, state);
      is_collapsed = false;
    }
    spec = new_spec;
    apply_tunes();
  }
};

RetunableTrafficModel::RetunableTrafficModel(const topo::Topology& topo,
                                             traffic::TrafficSpec spec,
                                             const SolveOptions& opts,
                                             const TrafficBuildOptions& build)
    : impl_(std::make_unique<Impl>(topo, std::move(spec), opts, build)) {
  const int procs = topo.num_processors();
  WORMNET_EXPECTS(procs >= 2);
  WORMNET_EXPECTS(impl_->spec.check(procs).empty());
  impl_->rebuild_cold(impl_->spec,
                      plan_collapse(topo, impl_->ct, impl_->spec, build));
}

RetunableTrafficModel::~RetunableTrafficModel() = default;
RetunableTrafficModel::RetunableTrafficModel(const RetunableTrafficModel& other)
    : impl_(std::make_unique<Impl>(*other.impl_)) {}
RetunableTrafficModel& RetunableTrafficModel::operator=(
    const RetunableTrafficModel& other) {
  if (this != &other) impl_ = std::make_unique<Impl>(*other.impl_);
  return *this;
}
RetunableTrafficModel::RetunableTrafficModel(RetunableTrafficModel&&) noexcept =
    default;
RetunableTrafficModel& RetunableTrafficModel::operator=(
    RetunableTrafficModel&&) noexcept = default;

const GeneralModel& RetunableTrafficModel::model() const { return impl_->net; }
GeneralModel& RetunableTrafficModel::model() { return impl_->net; }
const traffic::TrafficSpec& RetunableTrafficModel::spec() const {
  return impl_->spec;
}
bool RetunableTrafficModel::collapsed() const { return impl_->is_collapsed; }

void RetunableTrafficModel::set_uniform_lanes(int lanes) {
  WORMNET_EXPECTS(lanes >= 1);
  impl_->lanes_override = lanes;
  impl_->net.set_uniform_lanes(lanes);
}

void RetunableTrafficModel::set_uniform_buffers(int flits) {
  impl_->net.set_uniform_buffers(flits);  // throws first on flits < 1
  impl_->buffers_override = flits;
}

void RetunableTrafficModel::scale_bandwidths(double factor) {
  if (!(factor > 0.0))
    throw std::invalid_argument("scale_bandwidths: factor must be > 0");
  impl_->scale_model_bandwidths(factor);
  impl_->bandwidth_scale *= factor;
}

void RetunableTrafficModel::scale_injection_rates(double factor) {
  impl_->load_scale *= factor;
  impl_->net.scale_injection_rates(factor);
}

void RetunableTrafficModel::set_injection_process(
    const arrivals::ArrivalSpec& process, double lambda0) {
  impl_->net.set_injection_process(process, lambda0);
  impl_->tuned_ca2 = impl_->net.injection_ca2;
  impl_->tuned_residual = impl_->net.injection_batch_residual;
}

void RetunableTrafficModel::set_injection_ca2(double ca2) {
  impl_->net.set_injection_ca2(ca2);
  impl_->tuned_ca2 = ca2;
  impl_->tuned_residual = 0.0;
}

RetuneReport RetunableTrafficModel::retune_traffic(
    const traffic::TrafficSpec& new_spec) {
  WORMNET_SPAN("retune_traffic", "retune");
  Impl& im = *impl_;
  const int procs = im.topo->num_processors();
  WORMNET_EXPECTS(new_spec.check(procs).empty());

  RetuneReport report;
  const topo::Topology& rt = im.routing_topo();
  const CollapsePlan plan = plan_collapse(rt, im.ct, new_spec, im.build);
  if (plan.use_collapsed) {
    // The PR 6 composition: the new spec still respects the symmetry, so
    // "retune" is one pass per destination orbit against O(classes) state —
    // not a dense rebuild, whatever mode the resident was in before.
    im.net = build_collapsed(rt, im.ct, new_spec, plan.sym, im.opts);
    im.is_collapsed = true;
    im.state = DenseFlowState{};
    im.spec = new_spec;
    im.apply_tunes();
    report.collapsed = true;
    report.passes = plan.sym.num_proc_orbits;
    return report;
  }
  if (im.is_collapsed) {
    // Collapsed → dense mode switch: no dense flow state to delta against.
    im.rebuild_cold(new_spec, plan);
    report.rebuilt = true;
    return report;
  }

  // Dense delta: diff the two specs into signed per-destination seeds.  A
  // pair participates when its weight changed OR its source's injection
  // split changed (frac = w / injection_weight enters the QNA self-mass
  // even where the weight itself did not move).
  const traffic::TrafficSpec& old_spec = im.spec;
  std::vector<double> injw_old(static_cast<std::size_t>(procs), 0.0);
  std::vector<double> injw_new(static_cast<std::size_t>(procs), 0.0);
  for (int s = 0; s < procs; ++s) {
    injw_old[static_cast<std::size_t>(s)] = old_spec.injection_weight(s, procs);
    injw_new[static_cast<std::size_t>(s)] = new_spec.injection_weight(s, procs);
  }
  struct DeltaSeed {
    int src;
    double dflow;
    double dself;
  };
  std::vector<std::vector<DeltaSeed>> seeds(static_cast<std::size_t>(procs));
  long changed = 0;
  double d_total = 0.0;       // Σ (w_new − w_old) over all pairs
  double d_unroutable = 0.0;  // same, over pairs with no surviving path
  for (int d = 0; d < procs; ++d) {
    for (int s = 0; s < procs; ++s) {
      if (s == d) continue;
      const double w_old = old_spec.pair_weight(s, d, procs);
      const double w_new = new_spec.pair_weight(s, d, procs);
      d_total += w_new - w_old;
      // The cold build never seeded unreachable pairs (faulted fabrics), so
      // the delta must not either — only their demand accounting moves.
      if (!rt.reachable(s, d)) {
        d_unroutable += w_new - w_old;
        continue;
      }
      // Same product order as the cold seeds (frac first, then w·frac) so a
      // pure sign flip reproduces the original contribution bit for bit.
      double self_old = 0.0;
      if (w_old > 0.0) {
        const double frac = w_old / injw_old[static_cast<std::size_t>(s)];
        self_old = w_old * frac;
      }
      double self_new = 0.0;
      if (w_new > 0.0) {
        const double frac = w_new / injw_new[static_cast<std::size_t>(s)];
        self_new = w_new * frac;
      }
      const double dflow = w_new - w_old;
      const double dself = self_new - self_old;
      if (dflow == 0.0 && dself == 0.0) continue;
      seeds[static_cast<std::size_t>(d)].push_back({s, dflow, dself});
      ++changed;
    }
  }
  report.changed_pairs = changed;

  // A delta touching most of the matrix re-runs nearly every destination
  // pass with nearly every seed — at that point the sharded cold rebuild is
  // both faster and residue-free.
  if (changed > static_cast<long>(procs) * procs / 4) {
    im.rebuild_cold(new_spec, plan);
    report.rebuilt = true;
    return report;
  }

  im.state.total_weight += d_total;
  im.state.unroutable_weight += d_unroutable;
  if (changed > 0) {
    DestinationPass pass(im.topo->num_nodes());
    DenseFlowState& st = im.state;
    for (int d = 0; d < procs; ++d) {
      const auto& dseeds = seeds[static_cast<std::size_t>(d)];
      if (dseeds.empty()) continue;
      for (const DeltaSeed& sd : dseeds) {
        if (sd.dflow != 0.0) {
          st.weighted_distance += sd.dflow * rt.distance(sd.src, d);
        }
        pass.in_flows[static_cast<std::size_t>(sd.src)].push_back(
            {topo::kNoChannel, sd.dflow, sd.dself});
        dfs_route_dag(rt, im.ct, sd.src, d, pass);
      }
      propagate_flows(
          d, pass,
          [&](int ch, double flow, double self) {
            st.rate[static_cast<std::size_t>(ch)] += flow;
            st.self[static_cast<std::size_t>(ch)] += self;
          },
          [&](int in_ch, int port, double flow) {
            st.onward[static_cast<std::size_t>(
                st.onward_off[static_cast<std::size_t>(in_ch)] + port)] += flow;
          });
      pass.reset();
      ++report.passes;
    }
    snap_residues(im.state);
  }

  // Cheap O(channels + transitions) tail: re-derive the model from the
  // updated flow state (also refreshes the spec-dependent name, injection
  // classes and mean distance).
  im.net = assemble_dense(rt, im.ct, new_spec, im.opts, im.state);
  im.is_collapsed = false;
  im.spec = new_spec;
  im.apply_tunes();
  return report;
}

RetuneReport RetunableTrafficModel::retune_faults(
    std::shared_ptr<const topo::FaultSet> faults) {
  WORMNET_SPAN("retune_faults", "retune");
  Impl& im = *impl_;
  const int procs = im.topo->num_processors();
  if (faults && faults->empty()) faults.reset();  // empty set == healthy
  if (faults) WORMNET_EXPECTS(&faults->topology() == im.topo);

  RetuneReport report;
  const std::uint64_t old_digest = im.fault_set ? im.fault_set->digest() : 0;
  const std::uint64_t new_digest = faults ? faults->digest() : 0;
  if (old_digest == new_digest) return report;  // same degraded state: no-op

  std::shared_ptr<const topo::FaultedTopology> new_view;
  if (faults)
    new_view = std::make_shared<const topo::FaultedTopology>(*im.topo, *faults);

  // Destinations whose routing differs between the outgoing and incoming
  // views — the union is exactly the set of columns to re-propagate.
  std::vector<char> is_affected(static_cast<std::size_t>(procs), 0);
  if (im.faulted)
    for (int d : im.faulted->affected_destinations())
      is_affected[static_cast<std::size_t>(d)] = 1;
  if (new_view)
    for (int d : new_view->affected_destinations())
      is_affected[static_cast<std::size_t>(d)] = 1;

  if (im.is_collapsed) {
    // A collapsed resident has no dense flow state to delta against; entering
    // a degraded state rebuilds dense (faults void the symmetry), returning
    // to healthy re-plans and may collapse again.  That dense fallback is the
    // fault-orbit follow-on's worst symptom (ROADMAP), so it never passes
    // silently: a Rebuild cost-class counter in the global registry and a
    // one-shot Warn naming the broken symmetry class.
    const std::string broken_name = im.net.model_name;
    const int broken_classes = im.net.graph.size();
    im.fault_set = std::move(faults);
    im.faulted = std::move(new_view);
    const topo::Topology& rt = im.routing_topo();
    im.rebuild_cold(im.spec, plan_collapse(rt, im.ct, im.spec, im.build));
    report.rebuilt = true;
    report.collapsed = im.is_collapsed;
    obs::Registry::global()
        .counter("wormnet_collapsed_fault_dense_rebuilds_total",
                 "reason=broken-symmetry")
        .inc();
    if (!im.warned_collapsed_fault) {
      im.warned_collapsed_fault = true;
      WORMNET_LOG_SUB(Core, Warn)
          << "collapsed resident '" << broken_name
          << "' fell back to a dense rebuild on its first degraded query: "
          << "the fault breaks its declared symmetry (" << broken_classes
          << " quotient classes -> " << im.net.graph.size()
          << " dense classes); N-1 sweeps on this resident pay dense costs "
          << "until fault orbits land (ROADMAP)";
    }
    return report;
  }

  // Dense fault delta: per affected destination, NEGATE the column under the
  // outgoing view's routing (the DP is linear in its seeds, so negative
  // seeds reproduce the original contributions sign-flipped exactly), then
  // re-add it under the incoming view's.  Never escalates to a rebuild —
  // the work is bounded by 2 passes per affected column, the same order as
  // a full rebuild's one pass per column, and availability sweeps rely on
  // the cost class staying Retune for every scenario.
  const topo::Topology& old_rt = im.routing_topo();
  DenseFlowState& st = im.state;
  DestinationPass pass(im.topo->num_nodes());
  const auto run_delta = [&](const topo::Topology& view, int d, double sign) {
    bool seeded = false;
    for (int s = 0; s < procs; ++s) {
      if (s == d) continue;
      const double w = im.spec.pair_weight(s, d, procs);
      if (w <= 0.0) continue;
      if (!view.reachable(s, d)) {
        if (sign > 0.0) st.unroutable_weight += w;
        else st.unroutable_weight -= w;
        continue;
      }
      st.weighted_distance += sign * w * view.distance(s, d);
      const double frac = w / im.spec.injection_weight(s, procs);
      pass.in_flows[static_cast<std::size_t>(s)].push_back(
          {topo::kNoChannel, sign * w, sign * (w * frac)});
      dfs_route_dag(view, im.ct, s, d, pass);
      seeded = true;
    }
    if (!seeded) return;
    propagate_flows(
        d, pass,
        [&](int ch, double flow, double self) {
          st.rate[static_cast<std::size_t>(ch)] += flow;
          st.self[static_cast<std::size_t>(ch)] += self;
        },
        [&](int in_ch, int port, double flow) {
          st.onward[static_cast<std::size_t>(
              st.onward_off[static_cast<std::size_t>(in_ch)] + port)] += flow;
        });
    ++report.passes;
  };
  for (int d = 0; d < procs; ++d) {
    if (!is_affected[static_cast<std::size_t>(d)]) continue;
    ++report.changed_pairs;  // here: changed destination COLUMNS
    run_delta(old_rt, d, -1.0);
    pass.reset();
    if (new_view) run_delta(*new_view, d, +1.0);
    else run_delta(*im.topo, d, +1.0);
    pass.reset();
  }
  snap_residues(st);

  im.fault_set = std::move(faults);
  im.faulted = std::move(new_view);
  im.net = assemble_dense(im.routing_topo(), im.ct, im.spec, im.opts, st);
  im.apply_tunes();
  return report;
}

const topo::FaultSet* RetunableTrafficModel::faults() const {
  return impl_->fault_set.get();
}

const topo::Topology& RetunableTrafficModel::routing_topology() const {
  return impl_->routing_topo();
}

std::string check_collapsed_parity(const topo::Topology& topo,
                                   const traffic::TrafficSpec& spec,
                                   const GeneralModel& collapsed,
                                   const SolveOptions& opts) {
  WORMNET_EXPECTS(!collapsed.channel_class_of.empty());
  const GeneralModel dense = build_traffic_model(topo, spec, opts, {});
  if (static_cast<int>(collapsed.channel_class_of.size()) !=
      dense.graph.size()) {
    std::ostringstream out;
    out << "channel count mismatch: collapsed maps "
        << collapsed.channel_class_of.size() << " channels, topology has "
        << dense.graph.size();
    return out.str();
  }
  const auto disagree = [](double a, double b) {
    return std::abs(a - b) >
           1e-9 * std::max(std::abs(a), std::abs(b)) + 1e-12;
  };
  for (int ch = 0; ch < dense.graph.size(); ++ch) {
    const int c = collapsed.channel_class_of[static_cast<std::size_t>(ch)];
    if (c < 0 || c >= collapsed.graph.size()) {
      std::ostringstream out;
      out << "channel " << dense.graph.at(ch).label << " maps to class " << c
          << ", out of range";
      return out.str();
    }
    const ChannelClass& q = collapsed.graph.at(c);
    const ChannelClass& d = dense.graph.at(ch);
    if (disagree(q.rate_per_link, d.rate_per_link)) {
      std::ostringstream out;
      out << "class " << q.label << " rate " << q.rate_per_link
          << " disagrees with member channel " << d.label << " rate "
          << d.rate_per_link << " — the partition is not a routing symmetry";
      return out.str();
    }
    if (disagree(q.self_frac, d.self_frac)) {
      std::ostringstream out;
      out << "class " << q.label << " self_frac " << q.self_frac
          << " disagrees with member channel " << d.label << " self_frac "
          << d.self_frac << " — the partition is not a routing symmetry";
      return out.str();
    }
  }
  return "";
}

}  // namespace wormnet::core

#include "core/hypercube_graph.hpp"

#include <string>

#include "util/math.hpp"

namespace wormnet::core {

GeneralModel build_hypercube_collapsed(int dims, int lanes) {
  WORMNET_EXPECTS(dims >= 1 && dims <= 16);
  WORMNET_EXPECTS(lanes >= 1);
  const int n = dims;
  const double big_n = static_cast<double>(1L << n);

  GeneralModel net;

  ChannelClass inj;
  inj.label = "inj";
  inj.servers = 1;
  inj.lanes = lanes;
  inj.rate_per_link = 1.0;  // λ₀ per processor
  const int inj_id = net.graph.add_channel(inj);
  net.labels[inj.label] = inj_id;

  std::vector<int> dim_id(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    ChannelClass c;
    c.label = "dim" + std::to_string(d);
    c.servers = 1;  // e-cube is deterministic: no redundant links
    c.lanes = lanes;
    c.rate_per_link = big_n / (2.0 * (big_n - 1.0));
    dim_id[static_cast<std::size_t>(d)] = net.graph.add_channel(c);
    net.labels[c.label] = dim_id[static_cast<std::size_t>(d)];
  }

  ChannelClass ej;
  ej.label = "eject";
  ej.servers = 1;
  ej.lanes = lanes;
  ej.rate_per_link = 1.0;  // each PE absorbs λ₀ in steady state
  ej.terminal = true;
  const int ej_id = net.graph.add_channel(ej);
  net.labels[ej.label] = ej_id;

  // Injection: route to the lowest differing dimension.  dest != src is
  // guaranteed, so the injection never feeds the ejection directly.
  for (int d = 0; d < n; ++d) {
    const double p = static_cast<double>(1L << (n - d - 1)) / (big_n - 1.0);
    net.graph.add_transition(inj_id, dim_id[static_cast<std::size_t>(d)], p);
  }

  // Dimension d: bits above d are unbiased coins — continue at the next set
  // bit or eject when none remain.
  for (int d = 0; d < n; ++d) {
    for (int d2 = d + 1; d2 < n; ++d2) {
      const double p = 1.0 / static_cast<double>(1L << (d2 - d));
      net.graph.add_transition(dim_id[static_cast<std::size_t>(d)],
                               dim_id[static_cast<std::size_t>(d2)], p);
    }
    const double p_eject = 1.0 / static_cast<double>(1L << (n - 1 - d));
    net.graph.add_transition(dim_id[static_cast<std::size_t>(d)], ej_id, p_eject);
  }

  net.injection_classes = {inj_id};
  net.model_name = "collapsed-hypercube(n=" + std::to_string(dims) + ")";
  // Mean Hamming distance over distinct pairs plus injection and ejection.
  net.mean_distance = n * (big_n / 2.0) / (big_n - 1.0) + 2.0;

  WORMNET_ENSURES(net.graph.validate().empty());
  WORMNET_ENSURES(net.graph.acyclic());
  return net;
}

}  // namespace wormnet::core

#include "core/channel_graph.hpp"

#include <cmath>
#include <sstream>

namespace wormnet::core {

int ChannelGraph::add_channel(ChannelClass c) {
  WORMNET_EXPECTS(c.servers >= 1);
  WORMNET_EXPECTS(c.lanes >= 1);
  WORMNET_EXPECTS(c.rate_per_link >= 0.0);
  WORMNET_EXPECTS(c.ca2 >= 0.0);
  WORMNET_EXPECTS(c.self_frac >= 0.0 && c.self_frac <= 1.0 + 1e-9);
  WORMNET_EXPECTS(c.bandwidth > 0.0);
  WORMNET_EXPECTS(c.link_latency >= 0.0);
  WORMNET_EXPECTS(c.buffer_depth >= 1);
  classes_.push_back(std::move(c));
  return static_cast<int>(classes_.size()) - 1;
}

void ChannelGraph::add_transition(int from, int to, double weight, double route_prob) {
  WORMNET_EXPECTS(from >= 0 && from < size());
  WORMNET_EXPECTS(to >= 0 && to < size());
  WORMNET_EXPECTS(weight >= 0.0 && weight <= 1.0);
  if (route_prob < 0.0) route_prob = weight;
  WORMNET_EXPECTS(route_prob >= 0.0 && route_prob <= 1.0);
  classes_[static_cast<std::size_t>(from)].next.push_back({to, weight, route_prob});
}

const ChannelClass& ChannelGraph::at(int id) const {
  WORMNET_EXPECTS(id >= 0 && id < size());
  return classes_[static_cast<std::size_t>(id)];
}

ChannelClass& ChannelGraph::mutable_at(int id) {
  WORMNET_EXPECTS(id >= 0 && id < size());
  return classes_[static_cast<std::size_t>(id)];
}

std::string ChannelGraph::validate() const {
  std::ostringstream problems;
  for (int i = 0; i < size(); ++i) {
    const ChannelClass& c = at(i);
    if (!(c.bandwidth > 0.0))
      problems << "class " << i << " (" << c.label << ") bandwidth <= 0; ";
    if (c.link_latency < 0.0)
      problems << "class " << i << " (" << c.label << ") negative link latency; ";
    if (c.buffer_depth < 1)
      problems << "class " << i << " (" << c.label << ") buffer depth < 1 flit; ";
    if (c.terminal) {
      if (!c.next.empty())
        problems << "class " << i << " (" << c.label << ") is terminal but has transitions; ";
      continue;
    }
    // A non-terminal class with no traffic and no continuations is legal:
    // pattern-aware builders enumerate every physical channel, and skewed
    // patterns (permutations, hotspots) leave some of them unused.
    if (c.next.empty() && c.rate_per_link == 0.0) continue;
    double sum = 0.0;
    for (const Transition& t : c.next) {
      if (t.target < 0 || t.target >= size()) {
        problems << "class " << i << " transition target out of range; ";
        continue;
      }
      sum += t.weight;
    }
    if (std::abs(sum - 1.0) > 1e-9)
      problems << "class " << i << " (" << c.label << ") weights sum to " << sum << "; ";
  }
  return problems.str();
}

std::vector<int> ChannelGraph::reverse_topological_order() const {
  // Kahn's algorithm on the dependency relation "x_i needs x_j" (i -> j for
  // every transition).  Reverse-topological means: emit a class only after
  // every class it depends on has been emitted, i.e. process out-degree-zero
  // (terminal) classes first.
  const int n = size();
  std::vector<int> remaining_deps(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> dependents(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (const Transition& t : at(i).next) {
      ++remaining_deps[static_cast<std::size_t>(i)];
      dependents[static_cast<std::size_t>(t.target)].push_back(i);
    }
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<int> ready;
  for (int i = 0; i < n; ++i)
    if (remaining_deps[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  while (!ready.empty()) {
    const int c = ready.back();
    ready.pop_back();
    order.push_back(c);
    for (int dep : dependents[static_cast<std::size_t>(c)]) {
      if (--remaining_deps[static_cast<std::size_t>(dep)] == 0) ready.push_back(dep);
    }
  }
  if (static_cast<int>(order.size()) != n) return {};  // cycle
  return order;
}

}  // namespace wormnet::core

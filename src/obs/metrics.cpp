#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace wormnet::obs {

namespace {

// Shortest round-trippable formatting for doubles; integers print bare.
std::string num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_json_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

// "k=v,k=v" → `k="v",k="v"`; `extra` (already rendered) is appended last.
std::string prometheus_labels(std::string_view labels, std::string_view extra) {
  std::string out;
  std::size_t pos = 0;
  while (pos < labels.size()) {
    std::size_t comma = labels.find(',', pos);
    if (comma == std::string_view::npos) comma = labels.size();
    std::string_view item = labels.substr(pos, comma - pos);
    std::size_t eq = item.find('=');
    if (!item.empty()) {
      if (!out.empty()) out += ',';
      if (eq == std::string_view::npos) {
        out += "tag=\"";
        out += item;
        out += '"';
      } else {
        out += item.substr(0, eq);
        out += "=\"";
        out += item.substr(eq + 1);
        out += '"';
      }
    }
    pos = comma + 1;
  }
  if (!extra.empty()) {
    if (!out.empty()) out += ',';
    out += extra;
  }
  if (out.empty()) return "";
  return "{" + out + "}";
}

}  // namespace

HistogramMetric::HistogramMetric(std::vector<double> edges)
    : edges_(std::move(edges)) {
  if (edges_.empty()) throw std::logic_error("histogram needs >= 1 edge");
  if (!std::is_sorted(edges_.begin(), edges_.end()))
    throw std::logic_error("histogram edges must ascend");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(edges_.size() + 1);
  for (std::size_t i = 0; i <= edges_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void HistogramMetric::observe(double x) {
  std::size_t i =
      std::lower_bound(edges_.begin(), edges_.end(), x) - edges_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20 but not everywhere; CAS instead.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed))
    ;
}

void HistogramMetric::reset() {
  for (std::size_t i = 0; i <= edges_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const SnapshotEntry* Snapshot::find(std::string_view name,
                                    std::string_view labels) const {
  for (const SnapshotEntry& e : entries)
    if (e.name == name && e.labels == labels) return &e;
  return nullptr;
}

Registry::Entry& Registry::find_or_insert(std::string_view name,
                                          std::string_view labels,
                                          MetricKind kind) {
  Key key{std::string(name), std::string(labels)};
  auto it = metrics_.find(key);
  if (it != metrics_.end()) {
    if (it->second.kind != kind)
      throw std::logic_error("metric '" + key.first +
                             "' re-registered with a different kind");
    return it->second;
  }
  Entry e;
  e.kind = kind;
  return metrics_.emplace(std::move(key), std::move(e)).first->second;
}

Counter& Registry::counter(std::string_view name, std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_insert(name, labels, MetricKind::Counter);
  if (!e.c) e.c = std::make_unique<Counter>();
  return *e.c;
}

Gauge& Registry::gauge(std::string_view name, std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_insert(name, labels, MetricKind::Gauge);
  if (!e.g) e.g = std::make_unique<Gauge>();
  return *e.g;
}

HistogramMetric& Registry::histogram(std::string_view name,
                                     std::vector<double> edges,
                                     std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_insert(name, labels, MetricKind::Histogram);
  if (!e.h) {
    e.h = std::make_unique<HistogramMetric>(std::move(edges));
  } else if (e.h->edges() != edges) {
    throw std::logic_error("histogram '" + std::string(name) +
                           "' re-registered with different edges");
  }
  return *e.h;
}

double Registry::value(std::string_view name, std::string_view labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(Key{std::string(name), std::string(labels)});
  if (it == metrics_.end()) return 0.0;
  const Entry& e = it->second;
  switch (e.kind) {
    case MetricKind::Counter: return static_cast<double>(e.c->value());
    case MetricKind::Gauge: return e.g->value();
    case MetricKind::Histogram: return e.h->sum();
  }
  return 0.0;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.entries.reserve(metrics_.size());
  for (const auto& [key, e] : metrics_) {
    SnapshotEntry out;
    out.name = key.first;
    out.labels = key.second;
    out.kind = e.kind;
    switch (e.kind) {
      case MetricKind::Counter:
        out.value = static_cast<double>(e.c->value());
        break;
      case MetricKind::Gauge:
        out.value = e.g->value();
        break;
      case MetricKind::Histogram: {
        out.edges = e.h->edges();
        out.buckets.resize(out.edges.size() + 1);
        for (std::size_t i = 0; i < out.buckets.size(); ++i)
          out.buckets[i] = e.h->bucket(i);
        out.count = e.h->count();
        out.sum = e.h->sum();
        out.value = out.sum;
        break;
      }
    }
    snap.entries.push_back(std::move(out));
  }
  return snap;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, e] : metrics_) {
    (void)key;
    if (e.c) e.c->reset();
    if (e.g) e.g->reset();
    if (e.h) e.h->reset();
  }
}

Registry& Registry::global() {
  static Registry reg;
  return reg;
}

std::string to_json(const Snapshot& snap) {
  std::string out = "{\n  \"metrics\": [\n";
  for (std::size_t n = 0; n < snap.entries.size(); ++n) {
    const SnapshotEntry& e = snap.entries[n];
    out += "    {\"name\": ";
    append_json_escaped(out, e.name);
    out += ", \"labels\": ";
    append_json_escaped(out, e.labels);
    out += ", \"kind\": \"";
    out += kind_name(e.kind);
    out += "\"";
    if (e.kind == MetricKind::Histogram) {
      out += ", \"count\": " + num(static_cast<double>(e.count));
      out += ", \"sum\": " + num(e.sum);
      out += ", \"edges\": [";
      for (std::size_t i = 0; i < e.edges.size(); ++i)
        out += (i ? ", " : "") + num(e.edges[i]);
      out += "], \"buckets\": [";
      for (std::size_t i = 0; i < e.buckets.size(); ++i)
        out += (i ? ", " : "") + num(static_cast<double>(e.buckets[i]));
      out += "]";
    } else {
      out += ", \"value\": " + num(e.value);
    }
    out += n + 1 < snap.entries.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string to_csv(const Snapshot& snap) {
  std::string out = "name,labels,kind,value,count\n";
  for (const SnapshotEntry& e : snap.entries) {
    out += e.name;
    out += ',';
    out += '"';
    out += e.labels;
    out += '"';
    out += ',';
    out += kind_name(e.kind);
    out += ',';
    out += num(e.kind == MetricKind::Histogram ? e.sum : e.value);
    out += ',';
    out += num(static_cast<double>(e.count));
    out += '\n';
  }
  return out;
}

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  std::string last_typed;
  for (const SnapshotEntry& e : snap.entries) {
    if (e.name != last_typed) {
      out += "# TYPE " + e.name + " " + kind_name(e.kind) + "\n";
      last_typed = e.name;
    }
    if (e.kind == MetricKind::Histogram) {
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < e.buckets.size(); ++i) {
        cum += e.buckets[i];
        const std::string le =
            i < e.edges.size() ? "le=\"" + num(e.edges[i]) + "\""
                               : std::string("le=\"+Inf\"");
        out += e.name + "_bucket" + prometheus_labels(e.labels, le) + " " +
               num(static_cast<double>(cum)) + "\n";
      }
      out += e.name + "_sum" + prometheus_labels(e.labels, "") + " " +
             num(e.sum) + "\n";
      out += e.name + "_count" + prometheus_labels(e.labels, "") + " " +
             num(static_cast<double>(e.count)) + "\n";
    } else {
      out += e.name + prometheus_labels(e.labels, "") + " " + num(e.value) +
             "\n";
    }
  }
  return out;
}

}  // namespace wormnet::obs

// obs adapters — publish solver and simulator results into a Registry.
//
// The solver and simulator already compute per-channel utilization /
// blocking / wait decompositions and then hand them to callers who keep a
// scalar or two; these adapters are the "stop throwing it away" layer.
// Each takes a finished result (no instrumentation inside the hot paths)
// and writes gauges + histograms under a caller-chosen label so one
// Registry can hold solver, simulator and engine metrics from the same run.
#pragma once

#include <string_view>

namespace wormnet::core {
struct SolveResult;
}
namespace wormnet::sim {
struct SimResult;
}

namespace wormnet::obs {

class Registry;

/// Publish a solve's telemetry under labels "model=<label>":
/// iterations, convergence, max residual, stability, the max-utilization /
/// first-saturated classes and cause, plus per-class utilization, blocking
/// and wait histograms.
void publish_solve(Registry& reg, const core::SolveResult& sol,
                   std::string_view label);

/// Publish a simulation's per-channel utilization/occupancy export under
/// labels "run=<label>": delivered/generated/dropped counts, throughput,
/// latency mean, and per-channel utilization + flits-per-cycle histograms
/// with the max-utilization channel called out.  Requires the run to have
/// kept channel stats (SimConfig::channel_stats).
void publish_sim(Registry& reg, const sim::SimResult& r,
                 std::string_view label);

}  // namespace wormnet::obs

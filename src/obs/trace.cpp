#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace wormnet::obs {

namespace {

std::atomic<bool> g_tracing{false};

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += ' ';
        else
          out += c;
    }
  }
  out += '"';
}

}  // namespace

void TraceLog::complete(std::string name, std::string cat, std::int64_t ts_us,
                        std::int64_t dur_us, std::uint32_t tid,
                        std::uint32_t pid) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(TraceEvent{std::move(name), std::move(cat), 'X', ts_us,
                               dur_us, pid, tid});
}

void TraceLog::instant(std::string name, std::string cat, std::int64_t ts_us,
                       std::uint32_t tid, std::uint32_t pid) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(
      TraceEvent{std::move(name), std::move(cat), 'i', ts_us, 0, pid, tid});
}

std::size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::vector<TraceEvent> TraceLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string TraceLog::chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\": [\n";
  char buf[160];
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out += "  {\"name\": ";
    append_escaped(out, e.name);
    out += ", \"cat\": ";
    append_escaped(out, e.cat);
    if (e.ph == 'X') {
      std::snprintf(buf, sizeof buf,
                    ", \"ph\": \"X\", \"ts\": %lld, \"dur\": %lld, "
                    "\"pid\": %u, \"tid\": %u}",
                    static_cast<long long>(e.ts),
                    static_cast<long long>(e.dur), e.pid, e.tid);
    } else {
      std::snprintf(buf, sizeof buf,
                    ", \"ph\": \"i\", \"s\": \"t\", \"ts\": %lld, "
                    "\"pid\": %u, \"tid\": %u}",
                    static_cast<long long>(e.ts), e.pid, e.tid);
    }
    out += buf;
    out += i + 1 < events_.size() ? ",\n" : "\n";
  }
  out += "], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool TraceLog::write(const std::string& path) const {
  const std::string json = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

TraceLog& default_trace() {
  static TraceLog log;
  return log;
}

void set_tracing(bool on) { g_tracing.store(on, std::memory_order_relaxed); }

bool tracing_enabled() { return g_tracing.load(std::memory_order_relaxed); }

std::int64_t trace_now_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch)
      .count();
}

std::uint32_t trace_tid() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace wormnet::obs

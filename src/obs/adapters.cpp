#include "obs/adapters.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/general_model.hpp"
#include "obs/metrics.hpp"
#include "sim/metrics.hpp"

namespace wormnet::obs {

namespace {

std::vector<double> utilization_edges() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

std::vector<double> cycles_edges() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0};
}

}  // namespace

void publish_solve(Registry& reg, const core::SolveResult& sol,
                   std::string_view label) {
  std::string l = "model=";
  l += label;
  reg.gauge("wormnet_solve_iterations", l)
      .set(static_cast<double>(sol.iterations));
  reg.gauge("wormnet_solve_converged", l).set(sol.converged ? 1.0 : 0.0);
  reg.gauge("wormnet_solve_stable", l).set(sol.stable ? 1.0 : 0.0);
  reg.gauge("wormnet_solve_max_residual", l).set(sol.telemetry.max_residual);
  reg.gauge("wormnet_solve_max_utilization", l)
      .set(sol.telemetry.max_utilization);
  reg.gauge("wormnet_solve_max_utilization_class", l)
      .set(static_cast<double>(sol.telemetry.max_utilization_class));
  reg.gauge("wormnet_solve_first_saturated_class", l)
      .set(static_cast<double>(sol.telemetry.first_saturated_class));
  reg.gauge("wormnet_solve_channel_classes", l)
      .set(static_cast<double>(sol.channels.size()));
  if (sol.telemetry.saturation_cause[0] != '\0') {
    // The cause as a labeled counter, so the string survives text formats.
    std::string cl = l;
    cl += ",cause=";
    cl += sol.telemetry.saturation_cause;
    reg.counter("wormnet_solve_saturations_total", cl).inc();
  }
  auto& util_hist =
      reg.histogram("wormnet_solve_channel_utilization", utilization_edges(), l);
  auto& blocking_hist =
      reg.histogram("wormnet_solve_channel_blocking", utilization_edges(), l);
  auto& wait_hist =
      reg.histogram("wormnet_solve_channel_wait_cycles", cycles_edges(), l);
  for (const core::ChannelSolution& c : sol.channels) {
    if (std::isfinite(c.utilization)) util_hist.observe(c.utilization);
    if (std::isfinite(c.blocking)) blocking_hist.observe(c.blocking);
    if (std::isfinite(c.wait)) wait_hist.observe(c.wait);
  }
}

void publish_sim(Registry& reg, const sim::SimResult& r,
                 std::string_view label) {
  std::string l = "run=";
  l += label;
  reg.gauge("wormnet_sim_cycles_run", l).set(static_cast<double>(r.cycles_run));
  reg.gauge("wormnet_sim_delivered_messages", l)
      .set(static_cast<double>(r.delivered_messages));
  reg.gauge("wormnet_sim_generated_messages", l)
      .set(static_cast<double>(r.generated_messages));
  reg.gauge("wormnet_sim_dropped_worms", l)
      .set(static_cast<double>(r.dropped_worms));
  reg.gauge("wormnet_sim_unroutable_messages", l)
      .set(static_cast<double>(r.unroutable_messages));
  reg.gauge("wormnet_sim_throughput_flits_per_pe", l)
      .set(r.throughput_flits_per_pe);
  reg.gauge("wormnet_sim_latency_mean_cycles", l).set(r.latency.mean());
  reg.gauge("wormnet_sim_saturated", l).set(r.saturated ? 1.0 : 0.0);

  // Per-channel utilization (busy share of the window) and occupancy
  // (flits per cycle) — the export the conformance tables compare the
  // model's bundle utilizations against.
  if (!r.channels.empty() && r.window_cycles > 0) {
    auto& util_hist =
        reg.histogram("wormnet_sim_channel_utilization", utilization_edges(), l);
    auto& occ_hist =
        reg.histogram("wormnet_sim_channel_flits_per_cycle",
                      utilization_edges(), l);
    const double window = static_cast<double>(r.window_cycles);
    double max_util = 0.0;
    std::size_t argmax = 0;
    for (std::size_t i = 0; i < r.channels.size(); ++i) {
      const double util = static_cast<double>(r.channels[i].busy_cycles) / window;
      util_hist.observe(util);
      occ_hist.observe(static_cast<double>(r.channels[i].flits) / window);
      if (util > max_util) {
        max_util = util;
        argmax = i;
      }
    }
    reg.gauge("wormnet_sim_max_channel_utilization", l).set(max_util);
    reg.gauge("wormnet_sim_max_utilization_channel", l)
        .set(static_cast<double>(argmax));
  }
}

}  // namespace wormnet::obs

// obs::LogSink — pluggable backend for util/log.hpp.
//
// util::log_message routes every message that passes its (atomic,
// per-subsystem) threshold through the installed sink; with no sink
// installed the historical stderr behavior is the default.  Filtering
// stays in util::detail::LogLine, so the no-allocation-when-filtered
// guarantee is unchanged — a sink only ever sees messages that passed.
//
// CountingLogSink is the obs-flavored implementation: it counts messages
// per (subsystem, level) into a Registry and optionally forwards to
// stderr, so a snapshot records how noisy each layer was.
#pragma once

#include <string_view>

#include "util/log.hpp"

namespace wormnet::obs {

class Registry;

class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(util::LogLevel level, util::Subsystem sub,
                     std::string_view msg) = 0;
};

/// Install (not owned; must outlive use) or remove (nullptr) the sink.
void set_log_sink(LogSink* sink);
LogSink* log_sink();

/// Counts into `reg` as wormnet_log_messages_total{subsystem=...,level=...}
/// and forwards to stderr unless `forward` is false.
class CountingLogSink : public LogSink {
 public:
  explicit CountingLogSink(Registry& reg, bool forward = true)
      : reg_(reg), forward_(forward) {}
  void write(util::LogLevel level, util::Subsystem sub,
             std::string_view msg) override;

 private:
  Registry& reg_;
  bool forward_;
};

}  // namespace wormnet::obs

// obs::TraceLog / obs::ScopedTimer — Chrome trace-event spans.
//
// A TraceLog collects complete ('X') and instant ('i') events and renders
// them as the Trace Event Format JSON that chrome://tracing and Perfetto
// load directly.  ScopedTimer is the RAII producer for phase spans
// (build / retune / solve / campaign); it is deliberately inert when
// tracing is off: construction is one relaxed atomic load and a branch —
// no clock read, no allocation — so instrumented hot paths cost nothing
// by default.
//
// Two timebases coexist in one file without conflict because events carry
// their own pid: wall-clock spans (trace_now_us, pid 1) and simulator
// worm-lifecycle events (cycle numbers as microseconds, pid 2).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace wormnet::obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';         // 'X' complete, 'i' instant
  std::int64_t ts = 0;   // microseconds
  std::int64_t dur = 0;  // microseconds, complete events only
  std::uint32_t pid = 1;
  std::uint32_t tid = 0;
};

class TraceLog {
 public:
  void complete(std::string name, std::string cat, std::int64_t ts_us,
                std::int64_t dur_us, std::uint32_t tid = 0,
                std::uint32_t pid = 1);
  void instant(std::string name, std::string cat, std::int64_t ts_us,
               std::uint32_t tid = 0, std::uint32_t pid = 1);

  std::size_t size() const;
  void clear();
  std::vector<TraceEvent> events() const;

  /// {"traceEvents": [...]} — load in chrome://tracing or ui.perfetto.dev.
  std::string chrome_json() const;
  bool write(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Process-wide span sink used by ScopedTimer when tracing is enabled and
/// no explicit log is given.
TraceLog& default_trace();

/// Global switch for implicit spans.  Off (the default) makes every
/// WORMNET_SPAN site a relaxed load + untaken branch.
void set_tracing(bool on);
bool tracing_enabled();

/// Microseconds since the process trace epoch (first use).
std::int64_t trace_now_us();

/// Small dense id for the calling thread (0, 1, 2, ... in first-use order).
std::uint32_t trace_tid();

/// RAII phase span.  Inert unless tracing is on or an explicit TraceLog is
/// passed.  Name/category must outlive the scope (string literals).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, const char* cat = "phase",
                       TraceLog* log = nullptr)
      : log_(log ? log : (tracing_enabled() ? &default_trace() : nullptr)) {
    if (log_) {
      name_ = name;
      cat_ = cat;
      t0_ = trace_now_us();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (log_) log_->complete(name_, cat_, t0_, trace_now_us() - t0_, trace_tid());
  }

 private:
  TraceLog* log_;
  const char* name_ = "";
  const char* cat_ = "";
  std::int64_t t0_ = 0;
};

}  // namespace wormnet::obs

// Span a scope under the global tracing switch: WORMNET_SPAN("solve", "core");
#define WORMNET_SPAN_CAT2(a, b) a##b
#define WORMNET_SPAN_CAT(a, b) WORMNET_SPAN_CAT2(a, b)
#define WORMNET_SPAN(name, cat) \
  ::wormnet::obs::ScopedTimer WORMNET_SPAN_CAT(wormnet_span_, __LINE__)(name, cat)

#include "obs/log_sink.hpp"

#include <atomic>
#include <cstdio>
#include <string>

#include "obs/metrics.hpp"

namespace wormnet::obs {

namespace {
std::atomic<LogSink*> g_sink{nullptr};

const char* level_name(util::LogLevel l) {
  switch (l) {
    case util::LogLevel::Debug: return "debug";
    case util::LogLevel::Info: return "info";
    case util::LogLevel::Warn: return "warn";
    case util::LogLevel::Error: return "error";
    case util::LogLevel::Off: return "off";
  }
  return "?";
}
}  // namespace

void set_log_sink(LogSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

LogSink* log_sink() { return g_sink.load(std::memory_order_acquire); }

void CountingLogSink::write(util::LogLevel level, util::Subsystem sub,
                            std::string_view msg) {
  std::string labels = "subsystem=";
  labels += util::subsystem_name(sub);
  labels += ",level=";
  labels += level_name(level);
  reg_.counter("wormnet_log_messages_total", labels).inc();
  if (forward_) util::log_message_stderr(level, sub, std::string(msg));
}

}  // namespace wormnet::obs

// obs::Registry — named counters, gauges and fixed-bucket histograms.
//
// The registry is the one sink every layer publishes into: the solver's
// SolveTelemetry, the simulator's per-channel export, and the harness
// engines' cache/cost/throughput counters all land here so a single
// Registry::snapshot() describes a whole run.  Design constraints:
//
//  * Lock-cheap updates.  Registration (name → metric) takes a mutex once;
//    the returned reference is then updated with relaxed atomics only.
//    Hold the reference across the hot loop, not the name.
//  * Deterministic snapshots.  Metrics live in a std::map keyed on
//    (name, labels), so snapshot order is independent of which thread
//    registered first — the thread-pool determinism test relies on this.
//  * Label-tagged.  The label string is free-form "k=v,k=v" and becomes
//    {k="v",k="v"} in the Prometheus exporter.
//
// Exporters: to_json (machine-readable snapshot), to_csv (spreadsheet),
// to_prometheus (text exposition format, cumulative `le` buckets).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wormnet::obs {

/// Monotonic event count.  add/value are relaxed atomics.
class Counter {
 public:
  void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void inc() { add(1); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram.  Buckets are ascending upper edges: bucket i
/// counts samples x <= edges[i] (and > edges[i-1]); one implicit final
/// bucket counts x > edges.back() (the Prometheus +Inf bucket).  Edges are
/// fixed at registration — observation is a branchless-ish scan plus one
/// relaxed fetch_add, safe from any thread.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> edges);

  void observe(double x);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& edges() const { return edges_; }
  /// i in [0, edges().size()]; the last index is the overflow (+Inf) bucket.
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::vector<double> edges_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // edges_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { Counter, Gauge, Histogram };

/// One metric's state at snapshot time.
struct SnapshotEntry {
  std::string name;
  std::string labels;  // canonical "k=v,k=v" form; empty when untagged
  MetricKind kind = MetricKind::Counter;
  double value = 0.0;  // counter (as double) or gauge reading
  // Histogram payload (empty otherwise).
  std::vector<double> edges;
  std::vector<std::uint64_t> buckets;  // edges.size()+1, last = overflow
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct Snapshot {
  std::vector<SnapshotEntry> entries;  // sorted by (name, labels)
  const SnapshotEntry* find(std::string_view name,
                            std::string_view labels = {}) const;
};

/// The metric registry.  Thread-safe; see the header comment for the
/// locking contract.  Metric identity is (name, labels) — the same name
/// with different labels is a family of independent series.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-register.  Throws std::logic_error if (name, labels) already
  /// exists with a different kind (or different histogram edges).
  Counter& counter(std::string_view name, std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {});
  HistogramMetric& histogram(std::string_view name, std::vector<double> edges,
                             std::string_view labels = {});

  /// Current reading (counter/gauge value, histogram sum); 0 when absent.
  double value(std::string_view name, std::string_view labels = {}) const;

  Snapshot snapshot() const;
  std::size_t size() const;
  /// Zero every metric in place; registrations (and references) survive.
  void reset();

  /// Process-wide registry: the sink for fire-and-forget counters (e.g.
  /// the collapsed-resident dense-rebuild counter) that have no natural
  /// owner to thread a Registry through.
  static Registry& global();

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<HistogramMetric> h;
  };
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  Entry& find_or_insert(std::string_view name, std::string_view labels,
                        MetricKind kind);

  mutable std::mutex mu_;
  std::map<Key, Entry> metrics_;
};

/// Exporters over an immutable snapshot.
std::string to_json(const Snapshot& snap);
std::string to_csv(const Snapshot& snap);
std::string to_prometheus(const Snapshot& snap);

}  // namespace wormnet::obs
